// Archive manifest: the per-day index of the longitudinal census archive.
//
// A small, diffable text file — one line per archived day recording the
// day number, degraded flag, record/detection counts, segment and CSV byte
// sizes and the segment's SHA-256 digest. Day-level longitudinal queries
// (healthy days, daily means, archive size, compression ratio) read only
// the manifest; per-prefix queries go through the segments. The manifest
// is rewritten atomically (tmp file + rename) on every append so a crash
// between days leaves the previous consistent index in place.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "store/format.hpp"

namespace laces::store {

struct ManifestEntry {
  std::uint32_t day = 0;
  bool degraded = false;
  /// Published records in the segment.
  std::uint32_t record_count = 0;
  /// Prefixes anycast-based detected / GCD-confirmed on this day (the
  /// manifest-only inputs to daily-mean stability stats).
  std::uint32_t anycast_detected = 0;
  std::uint32_t gcd_confirmed = 0;
  /// Segment file size (including footer).
  std::uint64_t segment_bytes = 0;
  /// Size of the equivalent §4.2.4 publication CSV (compression ratio
  /// accounting; the archive must stay well under this).
  std::uint64_t csv_bytes = 0;
  /// Lowercase hex SHA-256 of the segment payload (= its footer digest).
  std::string digest_hex;
  /// Segment file name within the archive directory.
  std::string file;

  bool operator==(const ManifestEntry&) const = default;
};

struct Manifest {
  std::vector<ManifestEntry> entries;

  const ManifestEntry* find(std::uint32_t day) const;
  /// Day of the last archived entry (0 when empty).
  std::uint32_t last_day() const;
  std::uint64_t total_segment_bytes() const;
  std::uint64_t total_csv_bytes() const;

  /// Deterministic text rendering (what save() writes).
  std::string render() const;
  /// Atomic write: render to `<path>.tmp`, fsync-free rename over `path`.
  void save(const std::filesystem::path& path) const;
  /// Parses a manifest; throws ArchiveError naming the offending line.
  static Manifest load(const std::filesystem::path& path);
  static Manifest parse(const std::string& text);
};

}  // namespace laces::store
