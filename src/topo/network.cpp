#include "topo/network.hpp"

#include "net/responder.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace laces::topo {
namespace {

std::uint64_t target_pop_key(const net::IpAddress& addr, std::size_t pop) {
  StableHash h(0x7a23);
  h.mix(net::hash_value(addr)).mix(std::uint64_t{pop});
  return h.value();
}

}  // namespace

std::uint64_t flow_hash_of(const net::Datagram& datagram) {
  StableHash h(0xf707);
  h.mix(net::hash_value(datagram.src))
      .mix(net::hash_value(datagram.dst))
      .mix(std::uint64_t{datagram.ip_protocol});
  const auto l4 = datagram.l4();
  if (datagram.ip_protocol == 6 || datagram.ip_protocol == 17) {
    if (l4.size() >= 4) {
      // Source and destination ports.
      h.mix(std::uint64_t{l4[0]} << 24 | std::uint64_t{l4[1]} << 16 |
            std::uint64_t{l4[2]} << 8 | std::uint64_t{l4[3]});
    }
  } else if (l4.size() >= 6) {
    // ICMP echo identifier.
    h.mix(std::uint64_t{l4[4]} << 8 | std::uint64_t{l4[5]});
  }
  return h.value();
}

SimNetwork::SimNetwork(const World& world, EventQueue& events,
                       NetworkConfig config)
    : world_(world), events_(events), config_(config) {}

void SimNetwork::rebuild_view(LocalAddress& local) {
  local.view.id = local.pseudo_id;
  local.view.kind = DeploymentKind::kAnycastGlobal;
  local.view.pops.clear();
  local.view.pops.reserve(local.endpoints.size());
  for (const auto& ep : local.endpoints) {
    local.view.pops.push_back(Pop{ep.attach, {}});
  }
  local.catchment.clear();
}

std::uint64_t SimNetwork::attach(const net::IpAddress& addr,
                                 const AttachPoint& attach, RxHandler handler) {
  auto& local = local_[addr];
  // The routing identity of an announced address is a stable function of
  // the address itself: withdrawing and re-announcing the same prefix
  // reproduces the same catchments, as real BGP does.
  if (local.endpoints.empty()) {
    local.pseudo_id = static_cast<DeploymentId>(
        kPseudoDeploymentIdBase | (net::hash_value(addr) & 0x3fffffffu));
  }
  const std::uint64_t id = next_interface_id_++;
  local.endpoints.push_back(Endpoint{id, attach, std::move(handler)});
  rebuild_view(local);
  iface_addr_.insert_or_assign(id, addr);
  return id;
}

void SimNetwork::detach(std::uint64_t interface_id) {
  const net::IpAddress* found = iface_addr_.find(interface_id);
  if (found == nullptr) return;
  const net::IpAddress addr = *found;
  iface_addr_.erase(interface_id);
  LocalAddress* local = local_.find(addr);
  if (local == nullptr) return;
  auto& eps = local->endpoints;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (eps[i].id == interface_id) {
      eps.erase(eps.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (eps.empty()) {
    local_.erase(addr);
  } else {
    rebuild_view(*local);
  }
}

std::uint64_t SimNetwork::next_flow_seq(std::uint64_t flow_hash) {
  return flow_seq_[flow_hash]++;
}

bool SimNetwork::drop_packet(std::uint64_t salt) {
  if (config_.loss <= 0.0) return false;
  StableHash h(0x1055);
  h.mix(salt);
  return h.unit() < config_.loss;
}

void SimNetwork::send(const net::Datagram& datagram, const AttachPoint& from) {
  ++packets_sent_;
  const std::uint64_t salt = next_salt_++;
  if (drop_packet(salt)) return;
  // One hash lookup decides local-vs-target and hands the entry onward.
  if (const LocalAddress* local = local_.find(datagram.dst)) {
    deliver_local(*local, datagram, from, salt);
  } else {
    deliver_to_target(datagram, from, salt);
  }
}

void SimNetwork::deliver_local(const net::Datagram& datagram,
                               const AttachPoint& from, std::uint64_t salt) {
  const LocalAddress* local = local_.find(datagram.dst);
  if (local == nullptr) return;
  deliver_local(*local, datagram, from, salt);
}

void SimNetwork::deliver_local(const LocalAddress& local,
                               const net::Datagram& datagram,
                               const AttachPoint& from, std::uint64_t salt) {
  if (local.endpoints.empty()) return;

  std::size_t choice = 0;
  if (local.endpoints.size() > 1) {
    // Catchment selection over the sites announcing this address, using the
    // deployment view maintained on attach/detach.
    const std::uint64_t fh = flow_hash_of(datagram);
    choice = world_.routing()
                 .select_pop(from, local.view, day_, events_.now(), fh,
                             next_flow_seq(fh ^ local.pseudo_id),
                             local.catchment)
                 .pop_index;
  }

  const Endpoint& ep = local.endpoints[choice];
  const std::uint64_t ep_id = ep.id;
  const SimDuration delay =
      world_.routing().one_way_delay(from, ep.attach, salt, route_caches_);
  events_.schedule_after(delay, [this, datagram, ep_id]() {
    // Re-resolve: the interface may have detached while in flight (R5).
    const LocalAddress* addr = local_.find(datagram.dst);
    if (addr == nullptr) return;
    for (const auto& candidate : addr->endpoints) {
      if (candidate.id == ep_id) {
        ++deliveries_;
        candidate.handler(datagram, events_.now());
        return;
      }
    }
  });
}

void SimNetwork::deliver_to_target(const net::Datagram& datagram,
                                   const AttachPoint& from,
                                   std::uint64_t salt) {
  const Target* target = world_.find_target(datagram.dst);
  if (target == nullptr) return;
  if (world_.target_down(*target, day_)) return;

  // Backing-anycast TE (§5.8.2): ASes filtering v6 specifics route via the
  // covering anycast prefix instead of the /48's unicast PoP.
  const Deployment* dep = &world_.deployment(target->deployment);
  if (target->backing_deployment &&
      datagram.version() == net::IpVersion::kV6 &&
      world_.filters_v6_specifics(from.upstream)) {
    dep = &world_.deployment(*target->backing_deployment);
  }

  const std::uint64_t fh = flow_hash_of(datagram);
  const auto ingress =
      world_.routing().select_pop(from, *dep, day_, events_.now(), fh,
                                  next_flow_seq(fh ^ dep->id), route_caches_);
  const SimDuration d1 = world_.routing().one_way_delay(
      from, dep->pops[ingress.pop_index].attach, salt, route_caches_);

  const DeploymentId dep_id = dep->id;
  const std::size_t ingress_pop = ingress.pop_index;
  const Target* tgt = target;
  events_.schedule_after(d1, [this, datagram, dep_id, ingress_pop, tgt,
                              salt]() {
    const Deployment& d = world_.deployment(dep_id);

    // The PoP that serves the request and the PoP the response re-enters
    // the Internet at. Global-BGP-unicast serves everything from its home
    // server, with egress policy per ingress PoP (§5.1.3).
    std::size_t serve_pop = ingress_pop;
    std::size_t egress = ingress_pop;
    SimDuration internal{};
    if (d.kind == DeploymentKind::kGlobalBgpUnicast) {
      serve_pop = d.home_pop;
      egress = world_.routing().egress_pop(d, ingress_pop);
      internal = world_.routing().one_way_delay(d.pops[ingress_pop].attach,
                                                d.pops[d.home_pop].attach,
                                                salt ^ 0x1, route_caches_);
      if (egress != d.home_pop) {
        internal = internal + world_.routing().one_way_delay(
                                  d.pops[d.home_pop].attach,
                                  d.pops[egress].attach, salt ^ 0x2,
                                  route_caches_);
      }
    }

    // ICMP rate limiting per serving host (R3: offsets keep probes apart).
    const bool is_icmp = datagram.ip_protocol == 1 || datagram.ip_protocol == 58;
    if (is_icmp && config_.rate_limit_drop > 0.0) {
      const std::uint64_t key = target_pop_key(tgt->address, serve_pop);
      SimTime* last = last_arrival_.find(key);
      const SimTime now = events_.now();
      const bool too_fast =
          last != nullptr && now - *last < config_.rate_limit_window;
      if (last != nullptr) {
        *last = now;
      } else {
        last_arrival_.insert_or_assign(key, now);
      }
      if (too_fast) {
        StableHash h(0x2a7e);
        h.mix(salt).mix(key);
        if (h.unit() < config_.rate_limit_drop) return;
      }
    }

    // Effective responder: per-target protocol support, per-PoP CHAOS
    // identity (rotating across colocated values).
    net::ResponderConfig cfg = tgt->responder;
    const auto& chaos = d.pops[serve_pop].chaos_values;
    if (!chaos.empty()) {
      const std::uint64_t key = target_pop_key(tgt->address, serve_pop);
      cfg.chaos_value = chaos[chaos_rotation_[key]++ % chaos.size()];
    }
    const auto response = net::craft_response(datagram, cfg);
    if (!response) return;
    ++responses_generated_;

    const std::uint64_t response_salt = next_salt_++;
    if (drop_packet(response_salt)) return;
    const AttachPoint origin = d.pops[egress].attach;
    if (internal.ns() > 0) {
      const net::Datagram resp = *response;
      events_.schedule_after(internal, [this, resp, origin, response_salt]() {
        deliver_local(resp, origin, response_salt);
      });
    } else {
      deliver_local(*response, origin, response_salt);
    }
  });
}

}  // namespace laces::topo
