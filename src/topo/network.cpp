#include "topo/network.hpp"

#include "net/responder.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace laces::topo {
namespace {

std::uint64_t target_pop_key(const net::IpAddress& addr, std::size_t pop) {
  StableHash h(0x7a23);
  h.mix(net::hash_value(addr)).mix(std::uint64_t{pop});
  return h.value();
}

}  // namespace

std::uint64_t flow_hash_of(const net::Datagram& datagram) {
  StableHash h(0xf707);
  h.mix(net::hash_value(datagram.src))
      .mix(net::hash_value(datagram.dst))
      .mix(std::uint64_t{datagram.ip_protocol});
  const auto l4 = datagram.l4();
  if (datagram.ip_protocol == 6 || datagram.ip_protocol == 17) {
    if (l4.size() >= 4) {
      // Source and destination ports.
      h.mix(std::uint64_t{l4[0]} << 24 | std::uint64_t{l4[1]} << 16 |
            std::uint64_t{l4[2]} << 8 | std::uint64_t{l4[3]});
    }
  } else if (l4.size() >= 6) {
    // ICMP echo identifier.
    h.mix(std::uint64_t{l4[4]} << 8 | std::uint64_t{l4[5]});
  }
  return h.value();
}

SimNetwork::SimNetwork(const World& world, EventQueue& events,
                       NetworkConfig config)
    : world_(world), events_(events), config_(config), shard_states_(1) {}

void SimNetwork::enable_sharding(std::size_t shards) {
  expects(engine_ == nullptr, "enable_sharding called once");
  expects(shards >= 1, "at least one shard");
  const SimDuration lookahead = SimDuration::from_seconds(
      world_.routing().config().hop_latency_ms / 1e3);
  engine_ = std::make_unique<ShardedLoop>(
      events_, shards, lookahead, [](std::size_t) {
        // Deterministic flight-recorder ring order: shard k's thread gets
        // the (k-th) next ring id, so merged dumps order identically
        // run-to-run.
        obs::FlightRecorder::global().bind_thread_ring();
      });
  shard_states_.resize(shards);
}

std::size_t SimNetwork::run_events() {
  if (!engine_) return events_.run();
  const std::size_t executed = engine_->run();
  publish_engine_gauges();
  return executed;
}

void SimNetwork::publish_engine_gauges() {
  auto& registry = obs::Registry::global();
  registry.gauge("laces_sim_shards")
      .set(static_cast<double>(engine_->shards()));
  registry.gauge("laces_sim_epochs_total")
      .set(static_cast<double>(engine_->epochs()));
  registry.gauge("laces_sim_cross_shard_events_total")
      .set(static_cast<double>(engine_->cross_shard_events()));
  registry.gauge("laces_sim_cross_shard_cancels_total")
      .set(static_cast<double>(engine_->cross_shard_cancels()));
  registry.gauge("laces_sim_barrier_stall_ms_total")
      .set(static_cast<double>(engine_->barrier_stall_ns()) / 1e6);
  // Per-shard queue accounting summed across shards — after a drained
  // run() both must be 0 live (canceled stubs may linger per shard).
  registry.gauge("laces_sim_pending_events")
      .set(static_cast<double>(engine_->pending()));
  registry.gauge("laces_sim_pending_live_events")
      .set(static_cast<double>(engine_->pending_live()));
}

void SimNetwork::rebuild_view(LocalAddress& local) {
  local.view.id = local.pseudo_id;
  local.view.kind = DeploymentKind::kAnycastGlobal;
  local.view.pops.clear();
  local.view.pops.reserve(local.endpoints.size());
  for (const auto& ep : local.endpoints) {
    local.view.pops.push_back(Pop{ep.attach, {}});
  }
  local.view.finalize_layout();
  local.catchment.clear();
}

std::uint64_t SimNetwork::attach(const net::IpAddress& addr,
                                 const AttachPoint& attach, RxHandler handler) {
  auto& local = local_[addr];
  // The routing identity of an announced address is a stable function of
  // the address itself: withdrawing and re-announcing the same prefix
  // reproduces the same catchments, as real BGP does.
  if (local.endpoints.empty()) {
    local.pseudo_id = static_cast<DeploymentId>(
        kPseudoDeploymentIdBase | (net::hash_value(addr) & 0x3fffffffu));
  }
  const std::uint64_t id = next_interface_id_++;
  local.endpoints.push_back(Endpoint{id, attach, std::move(handler)});
  rebuild_view(local);
  iface_addr_.insert_or_assign(id, addr);
  return id;
}

void SimNetwork::detach(std::uint64_t interface_id) {
  const net::IpAddress* found = iface_addr_.find(interface_id);
  if (found == nullptr) return;
  const net::IpAddress addr = *found;
  iface_addr_.erase(interface_id);
  LocalAddress* local = local_.find(addr);
  if (local == nullptr) return;
  auto& eps = local->endpoints;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (eps[i].id == interface_id) {
      eps.erase(eps.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (eps.empty()) {
    local_.erase(addr);
  } else {
    rebuild_view(*local);
  }
}

std::uint64_t SimNetwork::next_flow_seq(std::uint64_t flow_hash) {
  return flow_seq_[flow_hash]++;
}

std::uint64_t SimNetwork::next_packet_salt(std::uint64_t flow_hash) {
  StableHash h(0x5a17);
  h.mix(std::uint64_t{day_}).mix(flow_hash).mix(send_seq_[flow_hash]++);
  return h.value();
}

std::uint64_t SimNetwork::response_salt_of(std::uint64_t probe_salt) {
  StableHash h(0x5a18);
  h.mix(probe_salt);
  return h.value();
}

std::uint64_t SimNetwork::responses_generated() const {
  std::uint64_t total = 0;
  for (const auto& s : shard_states_) total += s.responses_generated;
  return total;
}

std::uint64_t SimNetwork::overlay_flips() const {
  std::uint64_t total = 0;
  for (const auto& s : shard_states_) total += s.overlay_flips;
  return total;
}

bool SimNetwork::drop_packet(std::uint64_t salt) {
  if (config_.loss <= 0.0) return false;
  StableHash h(0x1055);
  h.mix(salt);
  return h.unit() < config_.loss;
}

std::size_t SimNetwork::shard_of(const net::IpAddress& dst) const {
  if (!engine_ || engine_->shards() <= 1) return 0;
  // Census-prefix granularity, so a target's rate-limit / CHAOS / flow
  // state always lives on exactly one shard no matter which VP probes it.
  StableHash h(0x5a4d);
  h.mix(net::hash_value(net::Prefix::of(dst)));
  return 1 + static_cast<std::size_t>(h.value() % (engine_->shards() - 1));
}

void SimNetwork::send(const net::Datagram& datagram, const AttachPoint& from) {
  ++packets_sent_;
  const std::uint64_t fh = flow_hash_of(datagram);
  const std::uint64_t salt = next_packet_salt(fh);
  if (drop_packet(salt)) return;
  // One hash lookup decides local-vs-target and hands the entry onward.
  if (const LocalAddress* local = local_.find(datagram.dst)) {
    deliver_local(*local, datagram, from, salt, events_.now());
  } else {
    deliver_to_target(datagram, from, fh, salt);
  }
}

void SimNetwork::respond_local(const net::Datagram& datagram,
                               const AttachPoint& from, std::uint64_t salt,
                               SimTime when) {
  const LocalAddress* local = local_.find(datagram.dst);
  if (local == nullptr) return;
  deliver_local(*local, datagram, from, salt, when);
}

void SimNetwork::deliver_local(const LocalAddress& local,
                               const net::Datagram& datagram,
                               const AttachPoint& from, std::uint64_t salt,
                               SimTime when) {
  if (local.endpoints.empty()) return;

  std::size_t choice = 0;
  if (local.endpoints.size() > 1) {
    // Catchment selection over the sites announcing this address, using the
    // deployment view maintained on attach/detach.
    const std::uint64_t fh = flow_hash_of(datagram);
    choice = world_.routing()
                 .select_pop(from, local.view, day_, when, fh,
                             next_flow_seq(fh ^ local.pseudo_id),
                             local.catchment)
                 .pop_index;
  }

  const Endpoint& ep = local.endpoints[choice];
  const std::uint64_t ep_id = ep.id;
  const SimDuration delay = world_.routing().one_way_delay(
      from, ep.attach, salt, shard_states_[0].caches);
  events_.schedule_at(when + delay, [this, datagram, ep_id]() {
    // Re-resolve: the interface may have detached while in flight (R5).
    const LocalAddress* addr = local_.find(datagram.dst);
    if (addr == nullptr) return;
    for (const auto& candidate : addr->endpoints) {
      if (candidate.id == ep_id) {
        ++deliveries_;
        candidate.handler(datagram, events_.now());
        return;
      }
    }
  });
}

void SimNetwork::deliver_to_target(const net::Datagram& datagram,
                                   const AttachPoint& from,
                                   std::uint64_t flow_hash,
                                   std::uint64_t salt) {
  const Target* target = world_.find_target(datagram.dst);
  if (target == nullptr) return;
  if (world_.target_down(*target, day_)) return;
  if (overlay_ != nullptr && !overlay_->empty()) {
    // Scenario data-plane regimes, evaluated on shard 0 in send order so
    // they are a pure function of packet identity: hitlist churn (the
    // prefix is withdrawn all day) and path-scoped loss (the forward path
    // eats the probe; the target looks unresponsive).
    const std::uint64_t pfx = net::hash_value(net::Prefix::of(datagram.dst));
    if (overlay_->target_withdrawn(pfx, day_)) {
      ++overlay_withdrawn_;
      return;
    }
    if (overlay_->path_loss_drop(pfx, events_.now(), salt)) {
      ++overlay_path_lost_;
      return;
    }
  }

  // Backing-anycast TE (§5.8.2): ASes filtering v6 specifics route via the
  // covering anycast prefix instead of the /48's unicast PoP.
  const Deployment* dep = &world_.deployment(target->deployment);
  if (target->backing_deployment &&
      datagram.version() == net::IpVersion::kV6 &&
      world_.filters_v6_specifics(from.upstream)) {
    dep = &world_.deployment(*target->backing_deployment);
  }

  // The per-flow ECMP counter is consumed here, in send order on shard 0,
  // so round-robin paths see the same packet sequence at any shard count.
  const std::uint64_t packet_seq = next_flow_seq(flow_hash ^ dep->id);
  const SimTime departed = events_.now();
  const std::size_t shard = shard_of(datagram.dst);
  if (shard == 0) {
    target_ingress(datagram, from, flow_hash, salt, packet_seq, dep->id,
                   target, 0, departed);
    return;
  }
  const DeploymentId dep_id = dep->id;
  const Target* tgt = target;
  engine_->post(0, shard, departed + engine_->epoch(),
                [this, datagram, from, flow_hash, salt, packet_seq, dep_id,
                 tgt, shard, departed]() {
                  target_ingress(datagram, from, flow_hash, salt, packet_seq,
                                 dep_id, tgt, shard, departed);
                });
}

void SimNetwork::target_ingress(const net::Datagram& datagram,
                                const AttachPoint& from,
                                std::uint64_t flow_hash, std::uint64_t salt,
                                std::uint64_t packet_seq, DeploymentId dep_id,
                                const Target* target, std::size_t shard,
                                SimTime departed) {
  ShardState& state = shard_states_[shard];
  const Deployment& dep = world_.deployment(dep_id);
  // `departed` (not now()) drives route-flip epochs: the choice belongs to
  // the moment the packet left, which on a cross-shard hop is earlier than
  // the time this code runs. A scenario route-flip window forces the
  // second-best PoP for its scoped flows — keyed on (salt, flow, dep), so
  // the flip is identical at any shard count.
  const bool force_flip =
      overlay_ != nullptr && overlay_->flip_forced(flow_hash, dep_id, departed);
  const auto ingress =
      force_flip ? world_.routing().select_pop_flipped(
                       from, dep, day_, departed, flow_hash, packet_seq,
                       state.caches)
                 : world_.routing().select_pop(from, dep, day_, departed,
                                               flow_hash, packet_seq,
                                               state.caches);
  if (force_flip && ingress.was_flipped) ++state.overlay_flips;
  const SimDuration d1 = world_.routing().one_way_delay(
      from, dep.pops[ingress.pop_index].attach, salt, state.caches);
  if (shard != 0) {
    // Lookahead soundness: the probe must not arrive before the epoch
    // boundary it crossed shards at. Holds for any connected AS graph
    // (>= 1 forwarding hop each way, jitter strictly positive).
    expects(d1 >= engine_->epoch(), "one-way delay covers the shard epoch");
  }
  const std::size_t ingress_pop = ingress.pop_index;
  const SimTime arrival = departed + d1;
  shard_queue(shard).schedule_at(
      arrival, [this, datagram, dep_id, ingress_pop, target, salt, shard,
                arrival]() {
        target_serve(datagram, dep_id, ingress_pop, target, salt, shard,
                     arrival);
      });
}

void SimNetwork::target_serve(const net::Datagram& datagram,
                              DeploymentId dep_id, std::size_t ingress_pop,
                              const Target* target, std::uint64_t salt,
                              std::size_t shard, SimTime arrival) {
  ShardState& state = shard_states_[shard];
  const Deployment& d = world_.deployment(dep_id);

  // The PoP that serves the request and the PoP the response re-enters
  // the Internet at. Global-BGP-unicast serves everything from its home
  // server, with egress policy per ingress PoP (§5.1.3).
  std::size_t serve_pop = ingress_pop;
  std::size_t egress = ingress_pop;
  SimDuration internal{};
  if (d.kind == DeploymentKind::kGlobalBgpUnicast) {
    serve_pop = d.home_pop;
    egress = world_.routing().egress_pop(d, ingress_pop);
    internal = world_.routing().one_way_delay(d.pops[ingress_pop].attach,
                                              d.pops[d.home_pop].attach,
                                              salt ^ 0x1, state.caches);
    if (egress != d.home_pop) {
      internal = internal + world_.routing().one_way_delay(
                                d.pops[d.home_pop].attach,
                                d.pops[egress].attach, salt ^ 0x2,
                                state.caches);
    }
  }

  // ICMP rate limiting per serving host (R3: offsets keep probes apart).
  const bool is_icmp = datagram.ip_protocol == 1 || datagram.ip_protocol == 58;
  if (is_icmp && config_.rate_limit_drop > 0.0) {
    const std::uint64_t key = target_pop_key(target->address, serve_pop);
    SimTime* last = state.last_arrival.find(key);
    const bool too_fast =
        last != nullptr && arrival - *last < config_.rate_limit_window;
    if (last != nullptr) {
      *last = arrival;
    } else {
      state.last_arrival.insert_or_assign(key, arrival);
    }
    if (too_fast) {
      StableHash h(0x2a7e);
      h.mix(salt).mix(key);
      if (h.unit() < config_.rate_limit_drop) return;
    }
  }

  // Effective responder: per-target protocol support, per-PoP CHAOS
  // identity (rotating across colocated values).
  net::ResponderConfig cfg = target->responder;
  const auto& chaos = d.pops[serve_pop].chaos_values;
  if (!chaos.empty()) {
    const std::uint64_t key = target_pop_key(target->address, serve_pop);
    cfg.chaos_value = chaos[state.chaos_rotation[key]++ % chaos.size()];
  }
  const auto response = net::craft_response(datagram, cfg);
  if (!response) return;
  ++state.responses_generated;

  const std::uint64_t response_salt = response_salt_of(salt);
  if (drop_packet(response_salt)) return;
  const AttachPoint origin = d.pops[egress].attach;
  const SimTime reentry = arrival + internal;
  if (shard != 0) {
    // Back to the control-plane shard. The VP-side catchment choice uses
    // the carried re-entry time, and merge order sorts by it, so per-flow
    // counters are consumed exactly as the sequential loop consumes them.
    const net::Datagram resp = *response;
    engine_->post(shard, 0, reentry + engine_->epoch(),
                  [this, resp, origin, response_salt, reentry]() {
                    respond_local(resp, origin, response_salt, reentry);
                  });
    return;
  }
  if (internal.ns() > 0) {
    const net::Datagram resp = *response;
    events_.schedule_at(reentry, [this, resp, origin, response_salt,
                                  reentry]() {
      respond_local(resp, origin, response_salt, reentry);
    });
  } else {
    respond_local(*response, origin, response_salt, reentry);
  }
}

}  // namespace laces::topo
