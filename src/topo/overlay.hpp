// Day-scoped data-plane scenario overlay.
//
// A DayOverlay is installed on the SimNetwork by the scenario runner for
// the duration of one census day and describes data-plane regimes that
// are invisible to the control plane: route flips that shift catchments
// mid-day, path-scoped loss that masquerades as unresponsiveness, and
// hitlist churn (targets that vanish between days). Every check is a pure
// function of packet identity (flow hash, packet salt, prefix hash, day)
// and the window's salt — never of execution order — so overlaid runs
// stay byte-identical at any --sim-threads shard count.
//
// The overlay pointer is read-only during event processing and is only
// swapped between run_events calls (the sharded loop's barrier provides
// the happens-before edge), so no synchronization is needed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simtime.hpp"

namespace laces::topo {

/// One timed regime window within the current day. `fraction` scopes the
/// window to a stable subset of flows/prefixes; `probability` is the
/// per-packet intensity within that scope.
struct OverlayWindow {
  SimTime start;
  SimTime end;
  double fraction = 1.0;
  double probability = 1.0;
  std::uint64_t salt = 0;

  bool active(SimTime when) const { return when >= start && when < end; }
};

struct DayOverlay {
  /// Flows (scoped by `fraction` of flow hashes) whose anycast catchment
  /// is forced to the second-best PoP while the window is active.
  std::vector<OverlayWindow> route_flip;
  /// Prefixes (scoped by `fraction`) whose inbound packets are dropped
  /// with `probability` while the window is active — the target looks
  /// unresponsive even though it is up.
  std::vector<OverlayWindow> path_loss;
  /// Fraction of target prefixes withdrawn for the whole day (hitlist
  /// churn between days); keyed on (churn_salt, day, prefix).
  double target_churn = 0.0;
  std::uint64_t churn_salt = 0;

  bool empty() const {
    return route_flip.empty() && path_loss.empty() && target_churn <= 0.0;
  }

  /// True when `flow_hash` toward deployment `dep_id` must take the
  /// second-best PoP at time `when`.
  bool flip_forced(std::uint64_t flow_hash, std::uint64_t dep_id,
                   SimTime when) const {
    for (const auto& w : route_flip) {
      if (!w.active(when)) continue;
      const double u = StableHash(w.salt ^ 0xf71b)
                           .mix(flow_hash)
                           .mix(dep_id)
                           .unit();
      if (u < w.fraction) return true;
    }
    return false;
  }

  /// True when the packet identified by `packet_salt` toward
  /// `prefix_hash` is lost on the forward path at time `when`.
  bool path_loss_drop(std::uint64_t prefix_hash, SimTime when,
                      std::uint64_t packet_salt) const {
    for (const auto& w : path_loss) {
      if (!w.active(when)) continue;
      const double scope =
          StableHash(w.salt ^ 0x10a).mix(prefix_hash).unit();
      if (scope >= w.fraction) continue;
      const double roll =
          StableHash(w.salt ^ 0x10b).mix(packet_salt).unit();
      if (roll < w.probability) return true;
    }
    return false;
  }

  /// True when `prefix_hash` is withdrawn for the whole of `day`.
  bool target_withdrawn(std::uint64_t prefix_hash, std::uint32_t day) const {
    if (target_churn <= 0.0) return false;
    const double u = StableHash(churn_salt ^ 0xc4)
                         .mix(static_cast<std::uint64_t>(day))
                         .mix(prefix_hash)
                         .unit();
    return u < target_churn;
  }
};

}  // namespace laces::topo
