#include "topo/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/lightspeed.hpp"
#include "util/contracts.hpp"

namespace laces::topo {
namespace {

/// Hash-derived uniform value in [0, 1), stable in its inputs.
double stable_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c = 0, std::uint64_t d = 0) {
  StableHash h(seed);
  h.mix(a).mix(b).mix(c).mix(d);
  return h.unit();
}

std::uint64_t attach_key(const AttachPoint& p) {
  return (std::uint64_t{p.city} << 32) | p.upstream;
}

/// Exact (collision-free) cache key for an ordered attach-point pair.
/// City and AS ids each fit 16 bits (asserted at model construction), so
/// the pair packs into one 64-bit key and a cache hit can never alias a
/// different pair — a prerequisite for byte-identical same-seed output.
std::uint64_t pair_key(const AttachPoint& a, const AttachPoint& b) {
  return (std::uint64_t{a.city} << 48) | (std::uint64_t{a.upstream} << 32) |
         (std::uint64_t{b.city} << 16) | std::uint64_t{b.upstream};
}

/// Exact cache key for (attach point, deployment).
std::uint64_t catchment_key(const AttachPoint& from, DeploymentId dep) {
  return (std::uint64_t{from.city} << 48) |
         (std::uint64_t{from.upstream} << 32) | std::uint64_t{dep};
}

}  // namespace

RoutingModel::RoutingModel(const AsGraph& graph, RoutingConfig config)
    : graph_(graph), config_(config) {
  const auto cities = geo::world_cities();
  city_count_ = cities.size();
  expects(city_count_ < 0x10000 && graph_.size() < 0x10000,
          "city/AS ids must fit 16 bits for exact routing-cache keys");
  city_dist_.resize(city_count_ * city_count_);
  for (std::size_t i = 0; i < city_count_; ++i) {
    for (std::size_t j = i; j < city_count_; ++j) {
      const float d = static_cast<float>(
          geo::distance_km(cities[i].location, cities[j].location));
      city_dist_[i * city_count_ + j] = d;
      city_dist_[j * city_count_ + i] = d;
    }
  }
  auto& registry = obs::Registry::global();
  delay_cache_hits_ = &registry.counter("laces_routing_delay_cache_hits_total");
  delay_cache_misses_ =
      &registry.counter("laces_routing_delay_cache_misses_total");
  catchment_cache_hits_ =
      &registry.counter("laces_routing_catchment_cache_hits_total");
  catchment_cache_misses_ =
      &registry.counter("laces_routing_catchment_cache_misses_total");
}

double RoutingModel::city_distance_km(geo::CityId a, geo::CityId b) const {
  expects(a < city_count_ && b < city_count_, "valid city ids");
  return city_dist_[static_cast<std::size_t>(a) * city_count_ + b];
}

double RoutingModel::score(const AttachPoint& from, const Pop& pop,
                           DeploymentId dep) const {
  const std::uint16_t hops = graph_.hops(from.upstream, pop.attach.upstream);
  const double hop_cost =
      hops == AsGraph::kUnreachable
          ? 1e9
          : static_cast<double>(hops) * config_.hop_weight_km;
  const double geo_cost = city_distance_km(from.city, pop.attach.city);
  const double perturb =
      stable_unit(config_.seed ^ 0x7e27, attach_key(from),
                  attach_key(pop.attach), dep) *
      config_.perturb_km;
  return hop_cost + geo_cost + perturb;
}

bool RoutingModel::flip_active(const AttachPoint& from, DeploymentId dep,
                               SimTime when) const {
  const std::int64_t epoch =
      when.ns() / (config_.flip_epoch_s * 1'000'000'000LL);
  return stable_unit(config_.seed ^ 0xf11b, attach_key(from), dep,
                     static_cast<std::uint64_t>(epoch)) <
         config_.route_flip_probability;
}

PopChoice RoutingModel::finish_choice(const AttachPoint& from,
                                      const Deployment& dep, SimTime when,
                                      std::uint64_t flow_hash,
                                      std::uint64_t packet_seq,
                                      Ranking ranking, bool force_flip) const {
  PopChoice choice;
  std::size_t best = ranking.best, second = ranking.second;
  double best_score = ranking.best_score;
  double second_score = ranking.second_score;

  // Route flip: in affected windows the runner-up briefly wins. A
  // scenario overlay can force the swap for its scoped flows.
  if (force_flip || flip_active(from, dep.id, when)) {
    std::swap(best, second);
    std::swap(best_score, second_score);
    choice.was_flipped = true;
  }

  // Equal-cost tie: some router pairs balance per packet, the rest hash
  // flow headers (so probes with static flow headers stay together).
  if (second_score - best_score < config_.ecmp_epsilon_km) {
    choice.was_tie = true;
    const bool round_robin =
        stable_unit(config_.seed ^ 0xec3f, attach_key(from), dep.id) <
        config_.per_packet_ecmp_fraction;
    const std::uint64_t selector =
        round_robin ? packet_seq
                    : (StableHash(config_.seed ^ 0xf10e)
                           .mix(flow_hash)
                           .mix(attach_key(from))
                           .mix(std::uint64_t{dep.id})
                           .value());
    if (selector % 2 == 1) best = second;
  }

  choice.pop_index = best;
  return choice;
}

PopChoice RoutingModel::select_pop(const AttachPoint& from,
                                   const Deployment& dep, std::uint32_t day,
                                   SimTime when, std::uint64_t flow_hash,
                                   std::uint64_t packet_seq) const {
  expects(!dep.pops.empty(), "deployment has PoPs");

  // Temporary anycast that is inactive today is served from its home PoP.
  if (dep.kind == DeploymentKind::kTemporaryAnycast &&
      !dep.anycast_active(day)) {
    PopChoice choice;
    choice.pop_index = dep.home_pop;
    return choice;
  }
  if (dep.pops.size() == 1) return PopChoice{};

  return finish_choice(from, dep, when, flow_hash, packet_seq,
                       scan_pops(from, dep));
}

PopChoice RoutingModel::select_pop(const AttachPoint& from,
                                   const Deployment& dep, std::uint32_t day,
                                   SimTime when, std::uint64_t flow_hash,
                                   std::uint64_t packet_seq,
                                   Caches& caches) const {
  expects(!dep.pops.empty(), "deployment has PoPs");
  if (dep.kind == DeploymentKind::kTemporaryAnycast &&
      !dep.anycast_active(day)) {
    PopChoice choice;
    choice.pop_index = dep.home_pop;
    return choice;
  }
  if (dep.pops.size() == 1) return PopChoice{};

  return finish_choice(from, dep, when, flow_hash, packet_seq,
                       rank_pops(from, dep, caches));
}

PopChoice RoutingModel::select_pop_flipped(const AttachPoint& from,
                                           const Deployment& dep,
                                           std::uint32_t day, SimTime when,
                                           std::uint64_t flow_hash,
                                           std::uint64_t packet_seq,
                                           Caches& caches) const {
  expects(!dep.pops.empty(), "deployment has PoPs");
  if (dep.kind == DeploymentKind::kTemporaryAnycast &&
      !dep.anycast_active(day)) {
    PopChoice choice;
    choice.pop_index = dep.home_pop;
    return choice;
  }
  if (dep.pops.size() == 1) return PopChoice{};

  return finish_choice(from, dep, when, flow_hash, packet_seq,
                       rank_pops(from, dep, caches), /*force_flip=*/true);
}

PopChoice RoutingModel::select_pop(const AttachPoint& from,
                                   const Deployment& dep, std::uint32_t day,
                                   SimTime when, std::uint64_t flow_hash,
                                   std::uint64_t packet_seq,
                                   FlatMap64<Ranking>& cache) const {
  expects(!dep.pops.empty(), "deployment has PoPs");
  if (dep.kind == DeploymentKind::kTemporaryAnycast &&
      !dep.anycast_active(day)) {
    PopChoice choice;
    choice.pop_index = dep.home_pop;
    return choice;
  }
  if (dep.pops.size() == 1) return PopChoice{};

  Ranking ranking;
  if (const Ranking* hit = cache.find(attach_key(from))) {
    catchment_cache_hits_->add();
    ranking = *hit;
  } else {
    catchment_cache_misses_->add();
    ranking = scan_pops(from, dep);
    cache.insert_or_assign(attach_key(from), ranking);
  }
  return finish_choice(from, dep, when, flow_hash, packet_seq, ranking);
}

RoutingModel::Ranking RoutingModel::rank_pops(const AttachPoint& from,
                                              const Deployment& dep,
                                              Caches& caches) const {
  // Transient pseudo-deployments (locally announced addresses) change
  // their PoP set on attach/detach; only immutable World deployments are
  // safe to memoize per (from, dep.id). Transient callers use the
  // select_pop overload with a caller-owned per-address cache instead.
  if (dep.id >= kPseudoDeploymentIdBase) return scan_pops(from, dep);
  const std::uint64_t key = catchment_key(from, dep.id);
  if (const Ranking* hit = caches.catchment.find(key)) {
    catchment_cache_hits_->add();
    return *hit;
  }
  catchment_cache_misses_->add();
  const Ranking r = scan_pops(from, dep);
  caches.catchment.insert_or_assign(key, r);
  return r;
}

RoutingModel::Ranking RoutingModel::scan_pops(const AttachPoint& from,
                                              const Deployment& dep) const {
  // Single pass for the best and second-best PoP by catchment score.
  // Everything that depends only on `from` is hoisted out of the loop: the
  // BFS hop row, the city-distance row, and the hash state of the perturb
  // after mixing the sender key. The per-PoP arithmetic below reproduces
  // score() bit for bit (same operations, same association order), which
  // the PerPopArithmeticMatchesScore test pins down.
  const auto& hop_row = graph_.hops_from(from.upstream);
  const float* dist_row =
      &city_dist_[static_cast<std::size_t>(from.city) * city_count_];
  StableHash perturb_prefix(config_.seed ^ 0x7e27);
  perturb_prefix.mix(attach_key(from));
  const std::uint64_t dep_id = dep.id;

  Ranking r;
  double best_score = std::numeric_limits<double>::infinity();
  double second_score = std::numeric_limits<double>::infinity();
  const auto consider = [&](std::size_t i, std::uint64_t city,
                            std::uint64_t upstream) {
    const std::uint16_t hops = hop_row[upstream];
    const double hop_cost =
        hops == AsGraph::kUnreachable
            ? 1e9
            : static_cast<double>(hops) * config_.hop_weight_km;
    const double geo_cost = dist_row[city];
    StableHash h = perturb_prefix;  // state after seed + sender key
    // Identical to attach_key(pop.attach): both ids fit 16 bits, so the
    // widened SoA values reproduce the packed key exactly.
    h.mix((city << 32) | upstream).mix(dep_id).mix(std::uint64_t{0});
    const double s = hop_cost + geo_cost + h.unit() * config_.perturb_km;
    if (s < best_score) {
      r.second = r.best;
      second_score = best_score;
      r.best = static_cast<std::uint32_t>(i);
      best_score = s;
    } else if (s < second_score) {
      r.second = static_cast<std::uint32_t>(i);
      second_score = s;
    }
  };
  if (dep.pop_city.size() == dep.pops.size()) {
    // SoA fast path: 4 sequential bytes per PoP (see Deployment::pop_city).
    const std::uint16_t* cities = dep.pop_city.data();
    const std::uint16_t* upstreams = dep.pop_upstream.data();
    for (std::size_t i = 0; i < dep.pops.size(); ++i) {
      consider(i, cities[i], upstreams[i]);
    }
  } else {
    // Layout not finalized (hand-built deployments in tests): same
    // arithmetic over the AoS fields.
    for (std::size_t i = 0; i < dep.pops.size(); ++i) {
      consider(i, dep.pops[i].attach.city, dep.pops[i].attach.upstream);
    }
  }
  r.best_score = best_score;
  r.second_score = second_score;
  return r;
}

std::size_t RoutingModel::egress_pop(const Deployment& dep,
                                     std::size_t ingress_pop) const {
  expects(dep.kind == DeploymentKind::kGlobalBgpUnicast, "GBU deployment");
  const bool local_egress =
      stable_unit(config_.seed ^ 0xe62e55, dep.id, ingress_pop) <
      config_.gbu_local_egress_fraction;
  return local_egress ? ingress_pop : dep.home_pop;
}

double RoutingModel::delay_base_ms(const AttachPoint& a,
                                   const AttachPoint& b) const {
  const double dist = city_distance_km(a.city, b.city);
  const double stretch =
      config_.stretch_min +
      (config_.stretch_max - config_.stretch_min) *
          stable_unit(config_.seed ^ 0x57e7c4, attach_key(a), attach_key(b));
  const std::uint16_t hops = graph_.hops(a.upstream, b.upstream);
  const double hop_ms =
      hops == AsGraph::kUnreachable
          ? 0.0
          : static_cast<double>(hops + 1) * config_.hop_latency_ms;
  // Same association order as the historical single-expression formula
  // ((dist/v*stretch + hop_ms) + jitter), so memoization is bit-exact.
  return dist / geo::kFibreKmPerMs * stretch + hop_ms;
}

SimDuration RoutingModel::one_way_delay(const AttachPoint& a,
                                        const AttachPoint& b,
                                        std::uint64_t packet_salt) const {
  // Exponential-ish jitter from a stable hash of the packet salt. Jitter is
  // strictly additive: delays never undercut light-in-fibre propagation.
  const double u = std::max(
      1e-12, stable_unit(config_.seed ^ 0x717be2, attach_key(a), attach_key(b),
                         packet_salt));
  const double jitter_ms = -config_.jitter_mean_ms * std::log(u);
  const double ms = delay_base_ms(a, b) + jitter_ms;
  return SimDuration::from_seconds(ms / 1e3);
}

SimDuration RoutingModel::one_way_delay(const AttachPoint& a,
                                        const AttachPoint& b,
                                        std::uint64_t packet_salt,
                                        Caches& caches) const {
  const std::uint64_t key = pair_key(a, b);
  double base_ms;
  if (const double* hit = caches.delay.find(key)) {
    delay_cache_hits_->add();
    base_ms = *hit;
  } else {
    delay_cache_misses_->add();
    base_ms = delay_base_ms(a, b);
    caches.delay.insert_or_assign(key, base_ms);
  }
  const double u = std::max(
      1e-12, stable_unit(config_.seed ^ 0x717be2, attach_key(a), attach_key(b),
                         packet_salt));
  const double jitter_ms = -config_.jitter_mean_ms * std::log(u);
  const double ms = base_ms + jitter_ms;
  return SimDuration::from_seconds(ms / 1e3);
}

}  // namespace laces::topo
