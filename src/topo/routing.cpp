#include "topo/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/lightspeed.hpp"
#include "util/contracts.hpp"

namespace laces::topo {
namespace {

/// Hash-derived uniform value in [0, 1), stable in its inputs.
double stable_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c = 0, std::uint64_t d = 0) {
  StableHash h(seed);
  h.mix(a).mix(b).mix(c).mix(d);
  return h.unit();
}

std::uint64_t attach_key(const AttachPoint& p) {
  return (std::uint64_t{p.city} << 32) | p.upstream;
}

}  // namespace

RoutingModel::RoutingModel(const AsGraph& graph, RoutingConfig config)
    : graph_(graph), config_(config) {
  const auto cities = geo::world_cities();
  city_count_ = cities.size();
  city_dist_.resize(city_count_ * city_count_);
  for (std::size_t i = 0; i < city_count_; ++i) {
    for (std::size_t j = i; j < city_count_; ++j) {
      const float d = static_cast<float>(
          geo::distance_km(cities[i].location, cities[j].location));
      city_dist_[i * city_count_ + j] = d;
      city_dist_[j * city_count_ + i] = d;
    }
  }
}

double RoutingModel::city_distance_km(geo::CityId a, geo::CityId b) const {
  expects(a < city_count_ && b < city_count_, "valid city ids");
  return city_dist_[static_cast<std::size_t>(a) * city_count_ + b];
}

double RoutingModel::score(const AttachPoint& from, const Pop& pop,
                           DeploymentId dep) const {
  const std::uint16_t hops = graph_.hops(from.upstream, pop.attach.upstream);
  const double hop_cost =
      hops == AsGraph::kUnreachable
          ? 1e9
          : static_cast<double>(hops) * config_.hop_weight_km;
  const double geo_cost = city_distance_km(from.city, pop.attach.city);
  const double perturb =
      stable_unit(config_.seed ^ 0x7e27, attach_key(from),
                  attach_key(pop.attach), dep) *
      config_.perturb_km;
  return hop_cost + geo_cost + perturb;
}

bool RoutingModel::flip_active(const AttachPoint& from, DeploymentId dep,
                               SimTime when) const {
  const std::int64_t epoch =
      when.ns() / (config_.flip_epoch_s * 1'000'000'000LL);
  return stable_unit(config_.seed ^ 0xf11b, attach_key(from), dep,
                     static_cast<std::uint64_t>(epoch)) <
         config_.route_flip_probability;
}

PopChoice RoutingModel::select_pop(const AttachPoint& from,
                                   const Deployment& dep, std::uint32_t day,
                                   SimTime when, std::uint64_t flow_hash,
                                   std::uint64_t packet_seq) const {
  expects(!dep.pops.empty(), "deployment has PoPs");
  PopChoice choice;

  // Temporary anycast that is inactive today is served from its home PoP.
  if (dep.kind == DeploymentKind::kTemporaryAnycast &&
      !dep.anycast_active(day)) {
    choice.pop_index = dep.home_pop;
    return choice;
  }
  if (dep.pops.size() == 1) return choice;

  // Single pass for the best and second-best PoP by catchment score.
  std::size_t best = 0, second = 0;
  double best_score = std::numeric_limits<double>::infinity();
  double second_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dep.pops.size(); ++i) {
    const double s = score(from, dep.pops[i], dep.id);
    if (s < best_score) {
      second = best;
      second_score = best_score;
      best = i;
      best_score = s;
    } else if (s < second_score) {
      second = i;
      second_score = s;
    }
  }

  // Route flip: in affected windows the runner-up briefly wins.
  if (flip_active(from, dep.id, when)) {
    std::swap(best, second);
    std::swap(best_score, second_score);
    choice.was_flipped = true;
  }

  // Equal-cost tie: some router pairs balance per packet, the rest hash
  // flow headers (so probes with static flow headers stay together).
  if (second_score - best_score < config_.ecmp_epsilon_km) {
    choice.was_tie = true;
    const bool round_robin =
        stable_unit(config_.seed ^ 0xec3f, attach_key(from), dep.id) <
        config_.per_packet_ecmp_fraction;
    const std::uint64_t selector =
        round_robin ? packet_seq
                    : (StableHash(config_.seed ^ 0xf10e)
                           .mix(flow_hash)
                           .mix(attach_key(from))
                           .mix(std::uint64_t{dep.id})
                           .value());
    if (selector % 2 == 1) best = second;
  }

  choice.pop_index = best;
  return choice;
}

std::size_t RoutingModel::egress_pop(const Deployment& dep,
                                     std::size_t ingress_pop) const {
  expects(dep.kind == DeploymentKind::kGlobalBgpUnicast, "GBU deployment");
  const bool local_egress =
      stable_unit(config_.seed ^ 0xe62e55, dep.id, ingress_pop) <
      config_.gbu_local_egress_fraction;
  return local_egress ? ingress_pop : dep.home_pop;
}

SimDuration RoutingModel::one_way_delay(const AttachPoint& a,
                                        const AttachPoint& b,
                                        std::uint64_t packet_salt) const {
  const double dist = city_distance_km(a.city, b.city);
  const double stretch =
      config_.stretch_min +
      (config_.stretch_max - config_.stretch_min) *
          stable_unit(config_.seed ^ 0x57e7c4, attach_key(a), attach_key(b));
  const std::uint16_t hops = graph_.hops(a.upstream, b.upstream);
  const double hop_ms =
      hops == AsGraph::kUnreachable
          ? 0.0
          : static_cast<double>(hops + 1) * config_.hop_latency_ms;
  // Exponential-ish jitter from a stable hash of the packet salt. Jitter is
  // strictly additive: delays never undercut light-in-fibre propagation.
  const double u = std::max(
      1e-12, stable_unit(config_.seed ^ 0x717be2, attach_key(a), attach_key(b),
                         packet_salt));
  const double jitter_ms = -config_.jitter_mean_ms * std::log(u);
  const double ms = dist / geo::kFibreKmPerMs * stretch + hop_ms + jitter_ms;
  return SimDuration::from_seconds(ms / 1e3);
}

}  // namespace laces::topo
