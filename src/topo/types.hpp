// Core entity types of the simulated Internet.
//
// Ground truth about who is anycast lives here (DeploymentKind et al.) and
// is consulted only by the simulator's routing and by analysis code playing
// the role of operator ground truth — never by measurement code (DESIGN.md
// decision 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/cities.hpp"
#include "net/address.hpp"
#include "net/responder.hpp"

namespace laces::topo {

/// Dense index of an AS in the AsGraph (not the public ASN).
using AsId = std::uint32_t;
/// Public autonomous-system number (for display / Table 6).
using Asn = std::uint32_t;
/// Index of an organization (operator) in the World.
using OrgId = std::uint32_t;
/// Index of a deployment (one announced service prefix) in the World.
using DeploymentId = std::uint32_t;

inline constexpr AsId kNoAs = ~AsId{0};

/// DeploymentIds at or above this value are transient pseudo-deployments
/// (SimNetwork's view of a locally announced address, derived from the
/// address hash). Their PoP sets change on attach/detach, so per-deployment
/// routing caches must skip them; real World deployments always sit below.
inline constexpr DeploymentId kPseudoDeploymentIdBase = 0x40000000u;

/// Where a host or PoP physically and topologically sits.
struct AttachPoint {
  geo::CityId city = 0;
  AsId upstream = 0;  // transit AS providing connectivity here

  friend bool operator==(const AttachPoint&, const AttachPoint&) = default;
};

/// One point of presence of a deployment.
struct Pop {
  AttachPoint attach;
  /// RFC 4892 CHAOS identities disclosed by nameservers at this PoP.
  /// Usually one value; colocated servers behind one site may expose
  /// several (the "auth1"/"auth2" weak-indicator case of §5.3.1) — the
  /// simulator rotates across them per query.
  std::vector<std::string> chaos_values;
};

/// The behavioural taxonomy the evaluation needs (paper §5).
enum class DeploymentKind : std::uint8_t {
  kUnicast,           // one PoP, one location
  kAnycastGlobal,     // replicated worldwide (hypergiants, DNS roots, ...)
  kAnycastRegional,   // replicated within one small region (ccTLD-style)
  kGlobalBgpUnicast,  // announced at many PoPs, served from one location
                      // (Microsoft-style, §5.1.3); ingress PoP handles the
                      // response path, so the anycast-based method sees
                      // multiple VPs while GCD correctly sees unicast
  kTemporaryAnycast,  // anycast only on some days (Imperva-style, §5.6/§5.7)
};

/// Whether a kind is "really anycast" for ground-truth labelling on a day.
bool is_anycast_ground_truth(DeploymentKind kind, bool temporary_active);

/// A service deployment: one logical prefix announced from `pops`.
struct Deployment {
  DeploymentId id = 0;
  OrgId org = 0;
  DeploymentKind kind = DeploymentKind::kUnicast;
  std::vector<Pop> pops;
  /// SoA mirror of pops[i].attach for the catchment scan hot loop
  /// (RoutingModel::scan_pops): city and upstream ids packed into two
  /// contiguous uint16 arrays (both id spaces fit 16 bits, asserted at
  /// RoutingModel construction), so a scan over thousands of PoPs streams
  /// 4 bytes per PoP instead of striding over Pop objects that drag each
  /// chaos_values vector header through the cache. Rebuilt by
  /// finalize_layout(); empty (and ignored by the scan) until then.
  std::vector<std::uint16_t> pop_city;
  std::vector<std::uint16_t> pop_upstream;
  /// kGlobalBgpUnicast: index into `pops` of the real (home) server site.
  std::size_t home_pop = 0;
  /// kTemporaryAnycast: period (days) and phase of the active window.
  std::uint32_t temp_period_days = 7;
  std::uint32_t temp_active_days = 2;
  std::uint32_t temp_phase = 0;

  /// True if the deployment behaves as anycast on `day`.
  bool anycast_active(std::uint32_t day) const;
  /// PoPs announcing the prefix on `day` (temporary anycast collapses to
  /// its home PoP on inactive days).
  std::size_t active_pop_count(std::uint32_t day) const;
  /// Rebuild the SoA attach arrays from `pops`. Call after the PoP set is
  /// final (WorldBuilder does; SimNetwork does on attach/detach).
  void finalize_layout();
};

/// An operator (Table 6 row): owns deployments, has a public ASN.
struct Org {
  OrgId id = 0;
  std::string name;
  Asn asn = 0;
};

/// One probeable address and the deployment serving it.
///
/// Census granularity is the /24 (or /48) the address sits in; partial
/// anycast (§5.6) arises when two targets in the same /24 map to different
/// deployments.
struct Target {
  net::IpAddress address;
  DeploymentId deployment = 0;
  net::ResponderConfig responder;
  /// True if this address is the hitlist representative of its prefix.
  bool representative = true;
  /// Backing-anycast traffic engineering (Fastly-style, §5.8.2): if set,
  /// vantage points whose AS filters the specific announcement reach this
  /// fallback anycast deployment instead.
  std::optional<DeploymentId> backing_deployment;
};

/// A BGP-announced prefix (may be less specific than the census /24
/// granularity), for the BGPTools comparison (Table 7) and prefix2as-style
/// analysis (§5.6).
struct BgpAnnouncement {
  net::Ipv4Prefix prefix;
  OrgId origin = 0;
};

/// IPv6 BGP announcement (§5.7's v6 BGPTools comparison; may be less
/// specific than the /48 census granularity).
struct BgpAnnouncementV6 {
  net::Ipv6Prefix prefix;
  OrgId origin = 0;
};

}  // namespace laces::topo
