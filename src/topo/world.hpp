// The simulated Internet: orgs, deployments, targets, BGP announcements.
//
// World::generate() builds a deterministic population whose *composition*
// mirrors the paper's evaluation at a configurable scale (default ~1:10 for
// anycast deployment counts; see WorldConfig):
//   * hypergiant CDNs with hundreds of prefixes and global PoP sets
//     (Table 6),
//   * medium global anycast operators and DNS root-style deployments,
//   * regional anycast (ccTLD-style; the hard cases of §5.5/§5.8.1),
//   * Microsoft-style global-BGP-unicast prefixes (the §5.1.3 FP family),
//   * Imperva-style temporary anycast (§5.6/§5.7),
//   * partial anycast inside a /24 (NTT-style, §5.6),
//   * Fastly-style backing anycast /48s whose specifics some ASes filter
//     (the IPv6 GCD FP mechanism of §5.8.2),
//   * a bulk of ordinary unicast and unresponsive prefixes.
//
// Ground truth lives here and ONLY here; measurement code never reads it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/addr_map.hpp"
#include "topo/as_graph.hpp"
#include "topo/routing.hpp"
#include "topo/types.hpp"

namespace laces::topo {

/// Population sizes. Defaults approximate a 1:10-scaled paper evaluation
/// for anycast structure with a reduced unicast bulk (the paper's 5.9 M /24
/// hitlist would dominate runtime without changing any shape; FP *rates*
/// are calibrated instead — see EXPERIMENTS.md).
struct WorldConfig {
  std::uint64_t seed = 42;
  AsGraphConfig as_graph;
  RoutingConfig routing;

  /// World scale multiplier (>= 1). Values above 1 multiply the unicast
  /// and unresponsive bulk — the families that dominate prefix count — by
  /// generating prefix-aggregated groups in the style of Leguay et al.
  /// ("Describing and Simulating Internet Routes"): each group of `scale`
  /// consecutive census prefixes shares one covering BGP aggregate, one
  /// attach point and one deployment, so routes stay realistic with
  /// O(groups) rather than O(prefixes) path state, and routing caches see
  /// one entry per aggregate. scale == 1 reproduces the historical
  /// generator byte for byte (it consumes the identical RNG stream).
  std::size_t scale = 1;

  // --- IPv4 population (counts of /24 prefixes) ---
  std::size_t v4_unicast = 24000;
  std::size_t v4_unresponsive = 4000;
  std::size_t v4_medium_anycast_orgs = 70;   // 1-6 prefixes, 4-48 sites each
  std::size_t v4_regional_anycast = 55;      // small-radius deployments
  std::size_t v4_global_bgp_unicast = 900;   // Microsoft-style
  std::size_t v4_temporary_anycast = 40;     // Imperva-style (v4 side)
  std::size_t v4_partial_anycast = 150;      // mixed /24s
  std::size_t dns_root_like = 13;            // root-server-style deployments
  std::size_t udp_only_anycast = 10;         // G-root-like (DNS-only)
  std::size_t tcp_only_anycast = 57;         // detectable via TCP only
  std::size_t tcp_udp_only_anycast = 27;     // TCP+UDP, ICMP-filtered

  // --- IPv6 population (counts of /48 prefixes) ---
  std::size_t v6_unicast = 9000;
  std::size_t v6_unresponsive = 3000;
  std::size_t v6_medium_anycast_orgs = 25;
  std::size_t v6_regional_anycast = 15;
  std::size_t v6_backing_anycast = 60;  // Fastly-style TE /48s

  // --- behavioural probabilities ---
  double unicast_tcp_responsive = 0.18;
  double unicast_dns_responsive = 0.04;
  double anycast_tcp_responsive = 0.30;
  double anycast_dns_responsive = 0.30;
  double v6_tcp_responsive = 0.65;  // v6 hitlists reflect active services
  /// Per-day probability that a responsive target is down (hitlist churn).
  /// Applies to ordinary unicast hosts; anycast deployments are production
  /// infrastructure with far better availability.
  double daily_churn = 0.02;
  double daily_churn_anycast = 0.002;
  /// Fraction of transit ASes that filter IPv6 /48 announcements.
  double v6_filtering_transit_fraction = 0.02;
};

/// Ground-truth label for a census prefix on a given day.
struct PrefixTruth {
  bool exists = false;
  bool anycast = false;          // representative address is anycast today
  bool partial_anycast = false;  // /24 mixes unicast and anycast addresses
  bool global_bgp_unicast = false;
  DeploymentId representative_deployment = 0;
  OrgId org = 0;
};

class World {
 public:
  static World generate(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const AsGraph& as_graph() const { return *graph_; }
  const RoutingModel& routing() const { return *routing_; }

  const std::vector<Org>& orgs() const { return orgs_; }
  const Org& org(OrgId id) const;
  const std::vector<Deployment>& deployments() const { return deployments_; }
  const Deployment& deployment(DeploymentId id) const;

  const std::vector<Target>& targets() const { return targets_; }
  /// Target serving `addr`, or nullptr if the address is unallocated.
  const Target* find_target(const net::IpAddress& addr) const;

  /// Hitlist-representative addresses of every allocated census prefix.
  std::vector<net::IpAddress> representatives(net::IpVersion version) const;
  /// All allocated probeable addresses (for the /32-granularity scan, §5.6).
  std::vector<net::IpAddress> all_addresses(net::IpVersion version) const;

  /// BGP-announced IPv4 prefixes (Table 7 / prefix2as analysis).
  const std::vector<BgpAnnouncement>& bgp_table() const { return bgp_table_; }
  /// BGP-announced IPv6 prefixes (§5.7 v6 comparison).
  const std::vector<BgpAnnouncementV6>& bgp_table_v6() const {
    return bgp_table_v6_;
  }

  /// A BGP-update event as a route collector would see it: a census prefix
  /// whose announcement state changed between `day - 1` and `day`.
  struct BgpUpdate {
    net::Prefix prefix;
    bool announced = true;  // false = withdrawn back to unicast
  };
  /// The day's update feed — temporary anycast deployments switching
  /// on or off (what the paper's §6 trigger-based detection would consume
  /// from route collectors).
  std::vector<BgpUpdate> bgp_updates(std::uint32_t day) const;

  /// Oracle: ground truth for a census prefix (analysis-only; plays the
  /// role of operator ground truth in §5.8).
  PrefixTruth truth(const net::Prefix& prefix, std::uint32_t day) const;

  /// True if this target is down on `day` (hitlist churn).
  bool target_down(const Target& target, std::uint32_t day) const;

  /// True if `as_id` filters IPv6 more-specific (/48) announcements,
  /// falling back to covering prefixes (§5.8.2).
  bool filters_v6_specifics(AsId as_id) const;

  /// The transit AS with the shortest distance to `city` (used to attach
  /// measurement-platform sites realistically).
  AsId transit_near(geo::CityId city) const;

  /// Total number of census prefixes allocated per family.
  std::size_t prefix_count(net::IpVersion version) const;

 private:
  World() = default;

  WorldConfig config_;
  std::unique_ptr<AsGraph> graph_;
  std::unique_ptr<RoutingModel> routing_;
  std::vector<Org> orgs_;
  std::vector<Deployment> deployments_;
  std::vector<Target> targets_;
  net::AddrMap<std::size_t> target_index_;
  std::unordered_map<net::Prefix, std::vector<std::size_t>, net::PrefixHash>
      prefix_targets_;
  std::vector<BgpAnnouncement> bgp_table_;
  std::vector<BgpAnnouncementV6> bgp_table_v6_;
  std::unordered_set<AsId> v6_filtering_ases_;
  std::vector<AsId> nearest_transit_;
  std::size_t v4_prefixes_ = 0;
  std::size_t v6_prefixes_ = 0;

  friend class WorldBuilder;
};

}  // namespace laces::topo
