#include "topo/world.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace laces::topo {
namespace {

/// Static description of the hypergiant operators of Table 6 (counts are
/// ~1:10 of the paper's census).
struct HypergiantSpec {
  const char* name;
  Asn asn;
  std::size_t v4_prefixes;
  std::size_t v6_prefixes;
  std::size_t sites;
  /// Fraction of v4 prefixes placed in large "mixed" BGP announcements that
  /// also contain unicast and unresponsive space (Appendix D structure).
  double mixed_fraction;
};

constexpr HypergiantSpec kHypergiants[] = {
    {"Google Cloud", 396982, 363, 1, 103, 0.25},
    {"Cloudflare", 13335, 313, 28, 150, 0.10},
    {"Amazon", 16509, 129, 12, 90, 0.30},
    {"Fastly", 54113, 44, 7, 80, 0.10},
    {"Cloudflare Spectrum", 209242, 29, 334, 150, 0.00},
    {"Incapsula", 19551, 1, 35, 50, 0.00},
    {"Afilias", 12041, 22, 22, 20, 0.00},
    {"GoDaddy", 44273, 3, 12, 25, 0.00},
};

}  // namespace

/// Stateful generator; friend of World so it can fill the private registries.
class WorldBuilder {
 public:
  WorldBuilder(World& world, const WorldConfig& config)
      : w_(world), cfg_(config), rng_(config.seed) {}

  void build() {
    w_.config_ = cfg_;
    w_.graph_ = std::make_unique<AsGraph>(AsGraph::generate(
        cfg_.as_graph, rng_));
    RoutingConfig routing = cfg_.routing;
    routing.seed ^= cfg_.seed * 0x9e3779b97f4a7c15ULL;
    w_.routing_ = std::make_unique<RoutingModel>(*w_.graph_, routing);

    index_transits();
    choose_v6_filtering_ases();

    make_org("Various", 0);  // org 0: unaffiliated bulk space

    make_hypergiants();
    make_global_bgp_unicast();
    make_dns_roots();
    make_protocol_niche_anycast();
    make_medium_orgs();
    make_regional_anycast();
    make_temporary_anycast();
    make_partial_anycast();
    make_backing_anycast_v6();
    make_unicast_bulk();
    make_unresponsive();

    // PoP sets are final: build the SoA attach arrays the catchment scan
    // streams over (Deployment::finalize_layout).
    for (auto& dep : w_.deployments_) dep.finalize_layout();
  }

 private:
  // ----------------------------------------------------------- primitives

  OrgId make_org(std::string name, Asn asn) {
    const OrgId id = static_cast<OrgId>(w_.orgs_.size());
    w_.orgs_.push_back(Org{id, std::move(name), asn});
    return id;
  }

  void index_transits() {
    for (AsId i = 0; i < w_.graph_->size(); ++i) {
      if (w_.graph_->node(i).tier == AsTier::kTransit) {
        transit_ids_.push_back(i);
      }
    }
    expects(!transit_ids_.empty(), "graph has transit ASes");
    // Nearest transit per city, precomputed once.
    const auto cities = geo::world_cities();
    nearest_transit_.resize(cities.size());
    for (std::size_t c = 0; c < cities.size(); ++c) {
      double best = 1e18;
      AsId pick = transit_ids_.front();
      for (AsId t : transit_ids_) {
        const double d = geo::distance_km(
            cities[c].location, geo::city(w_.graph_->node(t).home).location);
        if (d < best) {
          best = d;
          pick = t;
        }
      }
      nearest_transit_[c] = pick;
    }
    w_.nearest_transit_ = nearest_transit_;
  }

  void choose_v6_filtering_ases() {
    for (AsId t : transit_ids_) {
      if (rng_.chance(cfg_.v6_filtering_transit_fraction)) {
        w_.v6_filtering_ases_.insert(t);
      }
    }
  }

  AttachPoint attach_at(geo::CityId city) const {
    return AttachPoint{city, nearest_transit_[city]};
  }

  /// Distinct cities sampled with probability proportional to population.
  std::vector<geo::CityId> sample_cities(std::size_t count) {
    const auto cities = geo::world_cities();
    std::vector<geo::CityId> out;
    std::vector<bool> used(cities.size(), false);
    count = std::min(count, cities.size());
    // Weighted sampling by repeated roulette; population dominates.
    double total = 0;
    for (const auto& c : cities) total += c.population;
    while (out.size() < count) {
      double roll = rng_.uniform(0.0, total);
      for (std::size_t i = 0; i < cities.size(); ++i) {
        roll -= cities[i].population;
        if (roll <= 0) {
          if (!used[i]) {
            used[i] = true;
            out.push_back(static_cast<geo::CityId>(i));
          }
          break;
        }
      }
    }
    return out;
  }

  /// Distinct cities within `radius_km` of a seed city (regional anycast).
  std::vector<geo::CityId> sample_regional_cities(std::size_t count,
                                                  double radius_km,
                                                  geo::CityId seed_city) {
    const auto cities = geo::world_cities();
    std::vector<geo::CityId> candidates;
    for (std::size_t i = 0; i < cities.size(); ++i) {
      if (geo::distance_km(cities[i].location,
                           geo::city(seed_city).location) <= radius_km) {
        candidates.push_back(static_cast<geo::CityId>(i));
      }
    }
    shuffle(candidates, rng_);
    if (candidates.size() > count) candidates.resize(count);
    return candidates;
  }

  std::vector<Pop> pops_for(const std::vector<geo::CityId>& cities) {
    std::vector<Pop> pops;
    pops.reserve(cities.size());
    for (auto c : cities) pops.push_back(Pop{attach_at(c), {}});
    return pops;
  }

  DeploymentId add_deployment(OrgId org, DeploymentKind kind,
                              std::vector<Pop> pops, std::size_t home = 0) {
    const DeploymentId id = static_cast<DeploymentId>(w_.deployments_.size());
    Deployment dep;
    dep.id = id;
    dep.org = org;
    dep.kind = kind;
    dep.pops = std::move(pops);
    dep.home_pop = home;
    w_.deployments_.push_back(std::move(dep));
    return id;
  }

  void add_target(net::IpAddress addr, DeploymentId dep,
                  net::ResponderConfig responder, bool representative,
                  std::optional<DeploymentId> backing = std::nullopt) {
    Target t;
    t.address = addr;
    t.deployment = dep;
    t.responder = std::move(responder);
    t.representative = representative;
    t.backing_deployment = backing;
    // First writer wins, matching unordered_map::emplace semantics.
    if (w_.target_index_.find(addr) == nullptr) {
      w_.target_index_[addr] = w_.targets_.size();
    }
    w_.prefix_targets_[net::Prefix::of(addr)].push_back(w_.targets_.size());
    w_.targets_.push_back(std::move(t));
  }

  /// Allocates `count` consecutive /24s aligned to the block size and
  /// returns the first address of the first /24.
  std::uint32_t alloc_v4_block(std::size_t count) {
    std::size_t align = 1;
    while (align < count) align <<= 1;
    const std::uint32_t align_addrs = static_cast<std::uint32_t>(align) * 256;
    next_v4_ = (next_v4_ + align_addrs - 1) / align_addrs * align_addrs;
    const std::uint32_t base = next_v4_;
    next_v4_ += static_cast<std::uint32_t>(count) * 256;
    w_.v4_prefixes_ += count;
    return base;
  }

  /// Allocates one /48, announced per /48.
  net::Ipv6Address alloc_v6_prefix(OrgId org) {
    current_org_ = org;
    const auto base = v6_base(next_v6_++);
    w_.v6_prefixes_ += 1;
    announce_v6(base, 48);
    return base;
  }

  /// Allocates `count` consecutive /48s under ONE covering aggregate
  /// announcement (the v6 analogue of hypergiant supernets).
  net::Ipv6Address alloc_v6_block(std::size_t count) {
    std::size_t align = 1;
    std::uint8_t len = 48;
    while (align < count) {
      align <<= 1;
      --len;
    }
    next_v6_ = (next_v6_ + align - 1) / align * align;
    const auto base = v6_base(next_v6_);
    announce_v6(base, len);
    next_v6_ += count;
    w_.v6_prefixes_ += count;
    return base;
  }

  static net::Ipv6Address v6_base(std::uint64_t n) {
    // 2001:db8:<n>::/48 with <n> spilling into further /32s as needed.
    return net::Ipv6Address((0x20010db8ULL << 32) | (n << 16), 0);
  }

  void announce_v6(const net::Ipv6Address& base, std::uint8_t len) {
    w_.bgp_table_v6_.push_back(
        BgpAnnouncementV6{net::Ipv6Prefix(base, len), current_org_});
  }

  void announce(std::uint32_t base, std::uint8_t len, OrgId org) {
    w_.bgp_table_.push_back(
        BgpAnnouncement{net::Ipv4Prefix(net::Ipv4Address(base), len), org});
  }

  static std::uint8_t block_prefix_len(std::size_t count) {
    std::uint8_t len = 24;
    std::size_t n = 1;
    while (n < count) {
      n <<= 1;
      --len;
    }
    return len;
  }

  net::ResponderConfig responder_icmp_mix(double p_tcp, double p_dns) {
    net::ResponderConfig r;
    r.icmp = true;
    r.tcp = rng_.chance(p_tcp);
    r.dns = rng_.chance(p_dns);
    return r;
  }

  // --------------------------------------------------------- org families

  void make_hypergiants() {
    for (const auto& spec : kHypergiants) {
      const OrgId org = make_org(spec.name, spec.asn);
      const auto site_cities = sample_cities(spec.sites);
      const auto pops = pops_for(site_cities);

      // v4: pure-anycast announcements plus a few mixed supernets.
      const std::size_t mixed =
          static_cast<std::size_t>(spec.v4_prefixes * spec.mixed_fraction);
      std::size_t pure = spec.v4_prefixes - mixed;
      while (pure > 0) {
        const std::size_t chunk_options[] = {16, 16, 4, 1};
        std::size_t chunk =
            std::min(pure, chunk_options[rng_.index(std::size(chunk_options))]);
        // Keep announcements aligned power-of-two blocks.
        while ((chunk & (chunk - 1)) != 0) --chunk;
        const std::uint32_t base = alloc_v4_block(chunk);
        announce(base, block_prefix_len(chunk), org);
        for (std::size_t i = 0; i < chunk; ++i) {
          add_anycast_v4_target(base + static_cast<std::uint32_t>(i) * 256,
                                org, pops);
        }
        pure -= chunk;
      }
      if (mixed > 0) make_mixed_announcement(org, pops, mixed);

      // v6 prefixes: covering aggregate announcements in chunks of up to
      // 16 /48s (hypergiants announce /44s, which BGPTools lifts whole).
      current_org_ = org;
      std::size_t remaining_v6 = spec.v6_prefixes;
      while (remaining_v6 > 0) {
        const std::size_t chunk = std::min<std::size_t>(remaining_v6, 16);
        const auto block = alloc_v6_block(chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
          const net::Ipv6Address base(
              block.hi() + (static_cast<std::uint64_t>(i) << 16), 0);
          const auto dep =
              add_deployment(org, DeploymentKind::kAnycastGlobal, pops);
          net::ResponderConfig r;
          r.icmp = true;
          r.tcp = rng_.chance(cfg_.v6_tcp_responsive);
          r.dns = rng_.chance(cfg_.anycast_dns_responsive);
          add_target(net::Ipv6Address(base.hi(), 1), dep, r, true);
        }
        remaining_v6 -= chunk;
      }
    }
  }

  /// A large announced block mixing anycast, plain unicast and unresponsive
  /// /24s — the Appendix D structure that breaks BGPTools' whole-prefix
  /// assumption.
  void make_mixed_announcement(OrgId org, const std::vector<Pop>& pops,
                               std::size_t anycast_count) {
    // Roughly 1 anycast : 2 unicast : 2 unresponsive.
    const std::size_t total_raw = anycast_count * 5;
    std::size_t total = 1;
    while (total < total_raw) total <<= 1;
    const std::uint32_t base = alloc_v4_block(total);
    announce(base, block_prefix_len(total), org);
    std::vector<std::size_t> slots(total);
    for (std::size_t i = 0; i < total; ++i) slots[i] = i;
    shuffle(slots, rng_);
    std::size_t idx = 0;
    for (; idx < anycast_count; ++idx) {
      add_anycast_v4_target(base + static_cast<std::uint32_t>(slots[idx]) * 256,
                            org, pops);
    }
    const std::size_t unicast_count = anycast_count * 2;
    for (std::size_t k = 0; k < unicast_count && idx < total; ++k, ++idx) {
      add_unicast_v4_target(
          base + static_cast<std::uint32_t>(slots[idx]) * 256, org);
    }
    // The remaining slots stay unallocated (unresponsive space).
  }

  void add_anycast_v4_target(std::uint32_t prefix_base, OrgId org,
                             const std::vector<Pop>& pops) {
    const auto dep = add_deployment(org, DeploymentKind::kAnycastGlobal, pops);
    add_target(net::Ipv4Address(prefix_base + 1), dep,
               responder_icmp_mix(cfg_.anycast_tcp_responsive,
                                  cfg_.anycast_dns_responsive),
               true);
  }

  void add_unicast_v4_target(std::uint32_t prefix_base, OrgId org) {
    const auto city =
        static_cast<geo::CityId>(rng_.index(geo::world_cities().size()));
    const auto dep = add_deployment(org, DeploymentKind::kUnicast,
                                    pops_for({city}));
    add_target(net::Ipv4Address(prefix_base + 1), dep,
               responder_icmp_mix(cfg_.unicast_tcp_responsive,
                                  cfg_.unicast_dns_responsive),
               true);
  }

  void make_global_bgp_unicast() {
    const OrgId org = make_org("GlobalBackbone", 8075);
    const auto ingress_cities = sample_cities(45);
    const auto pops = pops_for(ingress_cities);
    std::size_t remaining = cfg_.v4_global_bgp_unicast;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(remaining, 16);
      std::size_t aligned = chunk;
      while ((aligned & (aligned - 1)) != 0) --aligned;
      const std::uint32_t base = alloc_v4_block(aligned);
      announce(base, block_prefix_len(aligned), org);
      for (std::size_t i = 0; i < aligned; ++i) {
        const auto home = rng_.index(pops.size());
        const auto dep = add_deployment(
            org, DeploymentKind::kGlobalBgpUnicast, pops, home);
        add_target(net::Ipv4Address(base + static_cast<std::uint32_t>(i) * 256 + 1),
                   dep, responder_icmp_mix(0.25, 0.02), true);
      }
      remaining -= aligned;
    }
  }

  void make_dns_roots() {
    for (std::size_t i = 0; i < cfg_.dns_root_like; ++i) {
      const char letter = static_cast<char>('A' + i);
      const OrgId org =
          make_org(std::string("Root-") + letter, 394000 + static_cast<Asn>(i));
      const auto cities = sample_cities(30 + rng_.index(90));
      auto pops = pops_for(cities);
      for (std::size_t p = 0; p < pops.size(); ++p) {
        pops[p].chaos_values = {std::string(1, static_cast<char>('a' + (i % 26))) +
                                std::to_string(p) + "." +
                                std::string(geo::city(pops[p].attach.city).name)};
      }
      net::ResponderConfig r;
      // The G-root analogue answers DNS only (paper §5.8.1).
      const bool udp_only = (i == 6);
      r.icmp = !udp_only;
      r.tcp = !udp_only;
      r.dns = true;

      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      const auto dep4 = add_deployment(org, DeploymentKind::kAnycastGlobal, pops);
      add_target(net::Ipv4Address(base + 1), dep4, r, true);

      const auto base6 = alloc_v6_prefix(org);
      const auto dep6 = add_deployment(org, DeploymentKind::kAnycastGlobal, pops);
      add_target(net::Ipv6Address(base6.hi(), 1), dep6, r, true);
    }
  }

  void make_protocol_niche_anycast() {
    // Anycast detectable only over UDP/DNS (LACNIC/Oracle/eBay-style).
    for (std::size_t i = 0; i < cfg_.udp_only_anycast; ++i) {
      const OrgId org = make_org("UdpOnly-" + std::to_string(i),
                                 64000 + static_cast<Asn>(i));
      const auto pops = pops_for(sample_cities(4 + rng_.index(26)));
      net::ResponderConfig r;
      r.icmp = false;
      r.tcp = false;
      r.dns = true;
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      add_target(net::Ipv4Address(base + 1),
                 add_deployment(org, DeploymentKind::kAnycastGlobal, pops), r,
                 true);
    }
    // Anycast answering TCP and DNS but filtering ICMP.
    for (std::size_t i = 0; i < cfg_.tcp_udp_only_anycast; ++i) {
      const OrgId org = make_org("TcpUdpOnly-" + std::to_string(i),
                                 64800 + static_cast<Asn>(i));
      const auto pops = pops_for(sample_cities(4 + rng_.index(26)));
      net::ResponderConfig r;
      r.icmp = false;
      r.tcp = true;
      r.dns = true;
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      add_target(net::Ipv4Address(base + 1),
                 add_deployment(org, DeploymentKind::kAnycastGlobal, pops), r,
                 true);
    }
    // Anycast detectable only over TCP.
    for (std::size_t i = 0; i < cfg_.tcp_only_anycast; ++i) {
      const OrgId org = make_org("TcpOnly-" + std::to_string(i),
                                 64500 + static_cast<Asn>(i));
      const auto pops = pops_for(sample_cities(4 + rng_.index(26)));
      net::ResponderConfig r;
      r.icmp = false;
      r.tcp = true;
      r.dns = false;
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      add_target(net::Ipv4Address(base + 1),
                 add_deployment(org, DeploymentKind::kAnycastGlobal, pops), r,
                 true);
    }
  }

  void make_medium_orgs() {
    for (std::size_t i = 0; i < cfg_.v4_medium_anycast_orgs; ++i) {
      const OrgId org = make_org("Anycast-" + std::to_string(i),
                                 65000 + static_cast<Asn>(i));
      // Most anycast deployments are small; site counts skew low with a
      // long tail (fills the 3-5-VP buckets of Table 3 with true anycast).
      const std::size_t sites = 3 + std::min<std::size_t>(
          45, static_cast<std::size_t>(rng_.exponential(8.0)));
      const auto pops = pops_for(sample_cities(sites));
      const std::size_t prefixes = 1 + rng_.index(6);
      for (std::size_t p = 0; p < prefixes; ++p) {
        const std::uint32_t base = alloc_v4_block(1);
        announce(base, 24, org);
        add_anycast_v4_target(base + 0, org, pops);
      }
    }
    for (std::size_t i = 0; i < cfg_.v6_medium_anycast_orgs; ++i) {
      const OrgId org = make_org("Anycast6-" + std::to_string(i),
                                 66000 + static_cast<Asn>(i));
      const auto pops = pops_for(sample_cities(4 + rng_.index(44)));
      const std::size_t prefixes = 1 + rng_.index(4);
      for (std::size_t p = 0; p < prefixes; ++p) {
        const auto base = alloc_v6_prefix(org);
        const auto dep =
            add_deployment(org, DeploymentKind::kAnycastGlobal, pops);
        net::ResponderConfig r;
        r.icmp = true;
        r.tcp = rng_.chance(cfg_.v6_tcp_responsive);
        r.dns = rng_.chance(cfg_.anycast_dns_responsive);
        add_target(net::Ipv6Address(base.hi(), 1), dep, r, true);
      }
    }
  }

  void make_regional_anycast() {
    const auto cities = geo::world_cities();
    for (std::size_t i = 0; i < cfg_.v4_regional_anycast; ++i) {
      const OrgId org = make_org("Regional-" + std::to_string(i),
                                 67000 + static_cast<Asn>(i));
      const auto seed_city = static_cast<geo::CityId>(rng_.index(cities.size()));
      auto site_cities =
          sample_regional_cities(3 + rng_.index(10), 1200.0, seed_city);
      if (site_cities.empty()) site_cities.push_back(seed_city);
      auto pops = pops_for(site_cities);
      // Regional deployments are typically ccTLD nameservers.
      for (std::size_t p = 0; p < pops.size(); ++p) {
        pops[p].chaos_values = {"ns" + std::to_string(p) + ".region" +
                                std::to_string(i)};
      }
      net::ResponderConfig r;
      r.icmp = true;
      r.tcp = rng_.chance(0.5);
      r.dns = true;
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      add_target(net::Ipv4Address(base + 1),
                 add_deployment(org, DeploymentKind::kAnycastRegional, pops),
                 r, true);
    }
    for (std::size_t i = 0; i < cfg_.v6_regional_anycast; ++i) {
      const OrgId org = make_org("Regional6-" + std::to_string(i),
                                 67500 + static_cast<Asn>(i));
      const auto seed_city = static_cast<geo::CityId>(rng_.index(cities.size()));
      auto site_cities =
          sample_regional_cities(3 + rng_.index(10), 1200.0, seed_city);
      if (site_cities.empty()) site_cities.push_back(seed_city);
      net::ResponderConfig r;
      r.icmp = true;
      r.tcp = rng_.chance(0.5);
      r.dns = true;
      const auto base = alloc_v6_prefix(org);
      add_target(net::Ipv6Address(base.hi(), 1),
                 add_deployment(org, DeploymentKind::kAnycastRegional,
                                pops_for(site_cities)),
                 r, true);
    }
  }

  void make_temporary_anycast() {
    // Imperva-style on-demand DDoS-mitigation anycast (org exists already).
    OrgId org = 0;
    for (const auto& o : w_.orgs_) {
      if (o.asn == 19551) org = o.id;
    }
    const auto pops = pops_for(sample_cities(50));
    for (std::size_t i = 0; i < cfg_.v4_temporary_anycast; ++i) {
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      const auto dep_id =
          add_deployment(org, DeploymentKind::kTemporaryAnycast, pops,
                         rng_.index(pops.size()));
      auto& dep = w_.deployments_[dep_id];
      dep.temp_period_days = 5 + static_cast<std::uint32_t>(rng_.index(9));
      dep.temp_active_days = 1 + static_cast<std::uint32_t>(rng_.index(3));
      dep.temp_phase = static_cast<std::uint32_t>(rng_.index(dep.temp_period_days));
      add_target(net::Ipv4Address(base + 1), dep_id,
                 responder_icmp_mix(0.4, 0.05), true);
    }
  }

  void make_partial_anycast() {
    // NTT-style: the /24's representative is a plain unicast server, but a
    // secondary address (.53, a public resolver) is replicated at all PoPs.
    const OrgId org = make_org("TransitBackbone", 2914);
    const auto pops = pops_for(sample_cities(30));
    for (std::size_t i = 0; i < cfg_.v4_partial_anycast; ++i) {
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, org);
      const auto home_city = pops[rng_.index(pops.size())].attach.city;
      const auto uni =
          add_deployment(org, DeploymentKind::kUnicast, pops_for({home_city}));
      add_target(net::Ipv4Address(base + 1), uni,
                 responder_icmp_mix(0.3, 0.0), true);

      // ~20% of the secondary services are temporary anycast, so the /24
      // reads entirely unicast on some days (§5.6's Imperva observation).
      const bool temporary = rng_.chance(0.2);
      const auto kind = temporary ? DeploymentKind::kTemporaryAnycast
                                  : DeploymentKind::kAnycastGlobal;
      const auto any_id = add_deployment(org, kind, pops, rng_.index(pops.size()));
      if (temporary) {
        auto& dep = w_.deployments_[any_id];
        dep.temp_period_days = 4 + static_cast<std::uint32_t>(rng_.index(8));
        dep.temp_active_days = 1 + static_cast<std::uint32_t>(rng_.index(2));
        dep.temp_phase =
            static_cast<std::uint32_t>(rng_.index(dep.temp_period_days));
      }
      net::ResponderConfig r;
      r.icmp = true;
      r.tcp = false;
      r.dns = true;
      add_target(net::IpAddress(net::Ipv4Address(base + 53)), any_id, r,
                 /*representative=*/false);
    }
  }

  void make_backing_anycast_v6() {
    // Fastly-style TE: /48s unicast at one PoP, backed by a covering
    // anycast announcement that /48-filtering ASes fall back to.
    OrgId org = 0;
    for (const auto& o : w_.orgs_) {
      if (o.asn == 54113) org = o.id;
    }
    const auto backing_pops = pops_for(sample_cities(80));
    const auto backing =
        add_deployment(org, DeploymentKind::kAnycastGlobal, backing_pops);
    for (std::size_t i = 0; i < cfg_.v6_backing_anycast; ++i) {
      const auto base = alloc_v6_prefix(org);
      const auto pop_city =
          backing_pops[rng_.index(backing_pops.size())].attach.city;
      const auto uni =
          add_deployment(org, DeploymentKind::kUnicast, pops_for({pop_city}));
      net::ResponderConfig r;
      r.icmp = true;
      r.tcp = rng_.chance(cfg_.v6_tcp_responsive);
      r.dns = false;
      add_target(net::Ipv6Address(base.hi(), 1), uni, r, true, backing);
    }
  }

  void make_unicast_bulk() {
    const auto cities = geo::world_cities();
    if (cfg_.scale > 1) {
      make_unicast_bulk_scaled();
      return;
    }
    for (std::size_t i = 0; i < cfg_.v4_unicast; ++i) {
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, /*org=*/0);
      const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
      const auto dep =
          add_deployment(0, DeploymentKind::kUnicast, pops_for({city}));
      auto r = responder_icmp_mix(cfg_.unicast_tcp_responsive,
                                  cfg_.unicast_dns_responsive);
      if (r.dns && rng_.chance(0.5)) {
        // Colocated servers exposing several CHAOS identities at one site —
        // the weak-indicator case of §5.3.1 / Appendix C.
        w_.deployments_[dep].pops[0].chaos_values = {"auth1", "auth2"};
      } else if (r.dns) {
        w_.deployments_[dep].pops[0].chaos_values = {"ns1"};
      }
      add_target(net::Ipv4Address(base + 1), dep, r, true);
    }
    for (std::size_t i = 0; i < cfg_.v6_unicast; ++i) {
      const auto base = alloc_v6_prefix(0);
      const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
      const auto dep =
          add_deployment(0, DeploymentKind::kUnicast, pops_for({city}));
      net::ResponderConfig r;
      r.icmp = true;
      r.tcp = rng_.chance(cfg_.v6_tcp_responsive);
      r.dns = rng_.chance(cfg_.unicast_dns_responsive);
      add_target(net::Ipv6Address(base.hi(), 1), dep, r, true);
    }
  }

  /// Bulk generator for scale > 1: prefix-aggregated path models. Each
  /// iteration emits `scale` consecutive census prefixes sharing ONE
  /// covering BGP aggregate, attach city and deployment — the Leguay-style
  /// aggregation that lets the world grow 10-100x while path state (and
  /// routing-cache footprint) grows only with the aggregate count.
  /// Responder behaviour still varies per member prefix.
  void make_unicast_bulk_scaled() {
    const auto cities = geo::world_cities();
    const std::size_t scale = cfg_.scale;
    for (std::size_t i = 0; i < cfg_.v4_unicast; ++i) {
      const std::uint32_t base = alloc_v4_block(scale);
      announce(base, block_prefix_len(scale), /*org=*/0);
      const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
      const auto dep =
          add_deployment(0, DeploymentKind::kUnicast, pops_for({city}));
      // One CHAOS identity flavour per aggregate (only visible on members
      // that answer DNS).
      if (rng_.chance(0.5)) {
        w_.deployments_[dep].pops[0].chaos_values = {"auth1", "auth2"};
      } else {
        w_.deployments_[dep].pops[0].chaos_values = {"ns1"};
      }
      for (std::size_t m = 0; m < scale; ++m) {
        auto r = responder_icmp_mix(cfg_.unicast_tcp_responsive,
                                    cfg_.unicast_dns_responsive);
        add_target(
            net::Ipv4Address(base + static_cast<std::uint32_t>(m) * 256 + 1),
            dep, r, true);
      }
    }
    for (std::size_t i = 0; i < cfg_.v6_unicast; ++i) {
      current_org_ = 0;
      const auto base = alloc_v6_block(scale);
      const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
      const auto dep =
          add_deployment(0, DeploymentKind::kUnicast, pops_for({city}));
      for (std::size_t m = 0; m < scale; ++m) {
        net::ResponderConfig r;
        r.icmp = true;
        r.tcp = rng_.chance(cfg_.v6_tcp_responsive);
        r.dns = rng_.chance(cfg_.unicast_dns_responsive);
        add_target(
            net::Ipv6Address(base.hi() + (static_cast<std::uint64_t>(m) << 16),
                             1),
            dep, r, true);
      }
    }
  }

  void make_unresponsive() {
    const auto cities = geo::world_cities();
    net::ResponderConfig dead;
    dead.icmp = false;
    dead.tcp = false;
    dead.dns = false;
    if (cfg_.scale > 1) {
      const std::size_t scale = cfg_.scale;
      for (std::size_t i = 0; i < cfg_.v4_unresponsive; ++i) {
        const std::uint32_t base = alloc_v4_block(scale);
        announce(base, block_prefix_len(scale), /*org=*/0);
        const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
        const auto dep =
            add_deployment(0, DeploymentKind::kUnicast, pops_for({city}));
        for (std::size_t m = 0; m < scale; ++m) {
          add_target(
              net::Ipv4Address(base + static_cast<std::uint32_t>(m) * 256 + 1),
              dep, dead, true);
        }
      }
      for (std::size_t i = 0; i < cfg_.v6_unresponsive; ++i) {
        current_org_ = 0;
        const auto base = alloc_v6_block(scale);
        const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
        const auto dep =
            add_deployment(0, DeploymentKind::kUnicast, pops_for({city}));
        for (std::size_t m = 0; m < scale; ++m) {
          add_target(net::Ipv6Address(
                         base.hi() + (static_cast<std::uint64_t>(m) << 16), 1),
                     dep, dead, true);
        }
      }
      return;
    }
    for (std::size_t i = 0; i < cfg_.v4_unresponsive; ++i) {
      const std::uint32_t base = alloc_v4_block(1);
      announce(base, 24, /*org=*/0);
      const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
      add_target(net::Ipv4Address(base + 1),
                 add_deployment(0, DeploymentKind::kUnicast, pops_for({city})),
                 dead, true);
    }
    for (std::size_t i = 0; i < cfg_.v6_unresponsive; ++i) {
      const auto base = alloc_v6_prefix(0);
      const auto city = static_cast<geo::CityId>(rng_.index(cities.size()));
      add_target(net::Ipv6Address(base.hi(), 1),
                 add_deployment(0, DeploymentKind::kUnicast, pops_for({city})),
                 dead, true);
    }
  }

  World& w_;
  WorldConfig cfg_;
  Rng rng_;
  OrgId current_org_ = 0;  // origin recorded on v6 announcements
  std::vector<AsId> transit_ids_;
  std::vector<AsId> nearest_transit_;
  std::uint32_t next_v4_ = 0x01000000;  // 1.0.0.0
  std::uint64_t next_v6_ = 1;
};

World World::generate(const WorldConfig& config) {
  World w;
  WorldBuilder builder(w, config);
  builder.build();
  return w;
}

const Org& World::org(OrgId id) const {
  expects(id < orgs_.size(), "valid org id");
  return orgs_[id];
}

const Deployment& World::deployment(DeploymentId id) const {
  expects(id < deployments_.size(), "valid deployment id");
  return deployments_[id];
}

const Target* World::find_target(const net::IpAddress& addr) const {
  const std::size_t* index = target_index_.find(addr);
  if (index == nullptr) return nullptr;
  return &targets_[*index];
}

std::vector<net::IpAddress> World::representatives(
    net::IpVersion version) const {
  std::vector<net::IpAddress> out;
  for (const auto& t : targets_) {
    if (t.representative && t.address.version() == version) {
      out.push_back(t.address);
    }
  }
  return out;
}

std::vector<net::IpAddress> World::all_addresses(net::IpVersion version) const {
  std::vector<net::IpAddress> out;
  for (const auto& t : targets_) {
    if (t.address.version() == version) out.push_back(t.address);
  }
  return out;
}

PrefixTruth World::truth(const net::Prefix& prefix, std::uint32_t day) const {
  PrefixTruth truth;
  const auto it = prefix_targets_.find(prefix);
  if (it == prefix_targets_.end()) return truth;
  bool any_anycast = false, any_unicast = false;
  for (const std::size_t idx : it->second) {
    const auto& t = targets_[idx];
    truth.exists = true;
    const auto& dep = deployments_[t.deployment];
    const bool anycast = is_anycast_ground_truth(dep.kind, dep.anycast_active(day));
    any_anycast |= anycast;
    any_unicast |= !anycast;
    if (t.representative) {
      truth.anycast = anycast;
      truth.representative_deployment = t.deployment;
      truth.org = dep.org;
      truth.global_bgp_unicast = dep.kind == DeploymentKind::kGlobalBgpUnicast;
    }
  }
  truth.partial_anycast = any_anycast && any_unicast;
  return truth;
}

bool World::target_down(const Target& target, std::uint32_t day) const {
  const auto& dep = deployments_[target.deployment];
  const bool infra = dep.kind == DeploymentKind::kAnycastGlobal ||
                     dep.kind == DeploymentKind::kAnycastRegional ||
                     dep.kind == DeploymentKind::kTemporaryAnycast;
  const double rate =
      infra ? config_.daily_churn_anycast : config_.daily_churn;
  StableHash h(config_.seed ^ 0xc44747 /* churn */);
  h.mix(net::hash_value(target.address)).mix(std::uint64_t{day});
  return h.unit() < rate;
}

bool World::filters_v6_specifics(AsId as_id) const {
  return v6_filtering_ases_.contains(as_id);
}

AsId World::transit_near(geo::CityId city) const {
  expects(city < nearest_transit_.size(), "valid city");
  return nearest_transit_[city];
}

std::size_t World::prefix_count(net::IpVersion version) const {
  return version == net::IpVersion::kV4 ? v4_prefixes_ : v6_prefixes_;
}

std::vector<World::BgpUpdate> World::bgp_updates(std::uint32_t day) const {
  std::vector<BgpUpdate> out;
  if (day == 0) return out;
  for (const auto& t : targets_) {
    const auto& dep = deployments_[t.deployment];
    if (dep.kind != DeploymentKind::kTemporaryAnycast) continue;
    const bool today = dep.anycast_active(day);
    const bool yesterday = dep.anycast_active(day - 1);
    if (today != yesterday) {
      out.push_back(BgpUpdate{net::Prefix::of(t.address), today});
    }
  }
  return out;
}

}  // namespace laces::topo
