// AS-level topology: tier-1 clique / transit / stub hierarchy.
//
// BGP route selection is approximated by hop counts on this graph (shortest
// AS path, the dominant BGP tie-breaker), combined with geographic
// hot-potato distance in RoutingModel. BFS results are cached per source.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/cities.hpp"
#include "topo/types.hpp"
#include "util/rng.hpp"

namespace laces::topo {

enum class AsTier : std::uint8_t { kTier1, kTransit, kStub };

struct AsNode {
  Asn asn = 0;
  AsTier tier = AsTier::kStub;
  geo::CityId home = 0;
  std::vector<AsId> neighbors;
};

/// Parameters for synthetic AS-graph generation.
struct AsGraphConfig {
  std::size_t tier1_count = 15;
  std::size_t transit_count = 250;
  std::size_t stub_count = 2800;
  /// Transit ASes connect to this many tier-1s (plus lateral peers).
  std::size_t transit_uplinks = 3;
  std::size_t transit_peers = 4;
  /// Stubs connect to this many transit providers.
  std::size_t stub_uplinks = 2;
};

/// Immutable AS graph with lazily cached per-source BFS hop counts.
class AsGraph {
 public:
  /// Generates a deterministic hierarchy: tier-1 full mesh; transit ASes
  /// multihomed to geographically close tier-1s; stubs homed to close
  /// transit ASes.
  static AsGraph generate(const AsGraphConfig& config, Rng& rng);

  std::size_t size() const { return nodes_.size(); }
  const AsNode& node(AsId id) const;

  /// Hop count from `src` to every AS (unreachable = kUnreachable).
  /// Cached per source; thread-compatible (not thread-safe).
  const std::vector<std::uint16_t>& hops_from(AsId src) const;

  /// Hop count between two ASes.
  std::uint16_t hops(AsId a, AsId b) const { return hops_from(a)[b]; }

  /// One shortest AS-level path from `from` to `to`, inclusive of both
  /// endpoints. Empty if unreachable. Deterministic (lowest-id neighbor
  /// wins ties) — the AS-level view a traceroute would reveal.
  std::vector<AsId> path(AsId from, AsId to) const;

  static constexpr std::uint16_t kUnreachable = 0xffff;

 private:
  std::vector<AsNode> nodes_;
  /// Indexed by source AS id (sized on first use). hops() sits under every
  /// catchment score, so the cached-row lookup must be one array index,
  /// not a hash probe.
  mutable std::vector<std::unique_ptr<std::vector<std::uint16_t>>> bfs_cache_;
};

}  // namespace laces::topo
