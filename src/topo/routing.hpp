// BGP-outcome-level routing: catchments, ECMP, route flips, latency.
//
// Rather than simulating BGP message exchange, RoutingModel reproduces the
// *outcomes* the paper's methodology observes (DESIGN.md decision 2):
//   * catchment selection — which PoP of a deployment receives a packet —
//     scored by AS-path length (dominant BGP tie-breaker), hot-potato
//     geographic distance, and a stable per-pair topological perturbation;
//   * equal-cost ties, broken by a flow-header hash (stable) or, on a small
//     fraction of paths, per-packet round-robin — the two FP mechanisms
//     discussed in §2.2/§5.1.4;
//   * route flips — time-windowed swaps of the top-2 PoPs, the FP mechanism
//     that grows with inter-probe interval (Figure 4);
//   * one-way delay — great-circle propagation at light-in-fibre speed times
//     a stable path stretch (>= 1, so unicast targets can never produce a
//     speed-of-light violation), plus per-hop forwarding and per-packet
//     jitter.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "topo/as_graph.hpp"
#include "topo/types.hpp"
#include "util/flat_map.hpp"
#include "util/simtime.hpp"

namespace laces::topo {

struct RoutingConfig {
  std::uint64_t seed = 0x9e0u;
  /// km-equivalent cost of one AS hop in catchment scoring.
  double hop_weight_km = 1200.0;
  /// Scale of the stable per-(endpoint, PoP) perturbation, km.
  double perturb_km = 500.0;
  /// Two PoPs within this score margin are an equal-cost tie.
  double ecmp_epsilon_km = 120.0;
  /// Fraction of tied (endpoint, deployment) pairs whose routers balance
  /// per packet (round-robin) instead of per flow. Calibrated so ~1-2% of
  /// unicast targets respond to two VPs even with synchronized probing
  /// (the irreducible FP floor of Figure 4 at a 0 s interval).
  double per_packet_ecmp_fraction = 0.15;
  /// Route flips are modelled as a persistent per-epoch route state: in
  /// each epoch the top-2 PoPs are swapped with this probability. Two
  /// probes observe different routes only when their epochs' states
  /// differ, so the FP count scales with the probing span — calibrated to
  /// Figure 4's 13,312 -> 14,506 -> 19,830 -> 198,079 progression for
  /// 0 s / 1 s / 1 min / 13 min inter-probe offsets.
  double route_flip_probability = 2.5e-3;
  /// Flip-state epoch length (typical route-flap persistence).
  std::int64_t flip_epoch_s = 600;
  /// Path stretch over the great-circle distance, stable per city pair.
  double stretch_min = 1.15;
  double stretch_max = 1.7;
  /// Forwarding/queueing delay per AS hop, ms.
  double hop_latency_ms = 0.35;
  /// Mean of the per-packet exponential jitter, ms.
  double jitter_mean_ms = 0.4;
  /// Probability that a global-BGP-unicast deployment egresses a response
  /// at the ingress PoP rather than near its home server (§5.1.3).
  /// Calibrated so most such prefixes answer to exactly 2 measuring VPs
  /// (the Table 3 disagreement concentrates in the 2-VP bucket).
  double gbu_local_egress_fraction = 0.12;
};

/// Result of a catchment decision.
struct PopChoice {
  std::size_t pop_index = 0;
  bool was_tie = false;
  bool was_flipped = false;
};

class RoutingModel {
 public:
  RoutingModel(const AsGraph& graph, RoutingConfig config);

  const RoutingConfig& config() const { return config_; }

  /// Best and runner-up PoP of a deployment for packets from one attach
  /// point — the result of the full catchment scan over dep.pops.
  struct Ranking {
    std::uint32_t best = 0;
    std::uint32_t second = 0;
    double best_score = 0.0;
    double second_score = 0.0;
  };

  /// Memoized routing state, owned by the caller (SimNetwork keeps one per
  /// run). Every cached value is a pure function of the immutable world,
  /// so any cache lifetime yields identical routed outcomes; per-run
  /// ownership additionally makes the hit/miss telemetry deterministic (a
  /// run always starts cold) while successive census days within one run
  /// keep each other warm — the longitudinal fast path.
  struct Caches {
    FlatMap64<double> delay;       // attach-pair key -> base delay ms
    FlatMap64<Ranking> catchment;  // (from, deployment) -> ranking
  };

  /// Which PoP of `dep` receives a packet from `from`?
  /// `day` gates temporary anycast; `flow_hash` is a hash of the packet's
  /// flow headers only (§5.1.4); `packet_seq` is the per-flow packet
  /// counter used by round-robin ECMP; `when` drives route flips.
  PopChoice select_pop(const AttachPoint& from, const Deployment& dep,
                       std::uint32_t day, SimTime when, std::uint64_t flow_hash,
                       std::uint64_t packet_seq) const;

  /// select_pop with the full PoP scan memoized in `caches` (immutable
  /// World deployments only; pseudo-deployment ids bypass the cache).
  PopChoice select_pop(const AttachPoint& from, const Deployment& dep,
                       std::uint32_t day, SimTime when, std::uint64_t flow_hash,
                       std::uint64_t packet_seq, Caches& caches) const;

  /// select_pop with the top-2 swap forced (scenario route-flip overlay):
  /// the runner-up PoP wins regardless of the model's own flip state, then
  /// ECMP tie-breaking proceeds as usual. Single-PoP and inactive
  /// temporary-anycast deployments are unaffected (there is nothing to
  /// flip to), in which case was_flipped stays false.
  PopChoice select_pop_flipped(const AttachPoint& from, const Deployment& dep,
                               std::uint32_t day, SimTime when,
                               std::uint64_t flow_hash,
                               std::uint64_t packet_seq, Caches& caches) const;

  /// select_pop for a transient deployment (SimNetwork's view of a locally
  /// announced address), whose rankings cannot go into the per-DeploymentId
  /// cache: the caller owns `cache`, keyed by the sending attach point, and
  /// must clear it whenever the PoP set changes.
  PopChoice select_pop(const AttachPoint& from, const Deployment& dep,
                       std::uint32_t day, SimTime when, std::uint64_t flow_hash,
                       std::uint64_t packet_seq,
                       FlatMap64<Ranking>& cache) const;

  /// For kGlobalBgpUnicast: the PoP where the response re-enters the
  /// Internet, given the PoP the probe ingressed at.
  std::size_t egress_pop(const Deployment& dep, std::size_t ingress_pop) const;

  /// One-way packet delay between attach points. `packet_salt` varies the
  /// jitter per packet; everything else is stable per pair.
  SimDuration one_way_delay(const AttachPoint& a, const AttachPoint& b,
                            std::uint64_t packet_salt) const;

  /// one_way_delay with the stable per-pair base memoized in `caches`.
  SimDuration one_way_delay(const AttachPoint& a, const AttachPoint& b,
                            std::uint64_t packet_salt, Caches& caches) const;

  /// Great-circle distance between two cities (precomputed matrix).
  double city_distance_km(geo::CityId a, geo::CityId b) const;

  /// Catchment score of one PoP for a packet from `from` (exposed for
  /// tests and analysis).
  double score(const AttachPoint& from, const Pop& pop,
               DeploymentId dep) const;

 private:
  bool flip_active(const AttachPoint& from, DeploymentId dep,
                   SimTime when) const;

  /// The stable (salt-independent) part of one_way_delay for a pair of
  /// attach points: propagation * stretch + per-hop forwarding, in ms.
  double delay_base_ms(const AttachPoint& a, const AttachPoint& b) const;

  /// The full catchment scan over dep.pops, uncached. Produces bit-exactly
  /// the ranking implied by score() for every PoP.
  Ranking scan_pops(const AttachPoint& from, const Deployment& dep) const;
  /// scan_pops through the (from, dep)-keyed cache when `dep` is an
  /// immutable World deployment; straight scan otherwise.
  Ranking rank_pops(const AttachPoint& from, const Deployment& dep,
                    Caches& caches) const;
  /// Flip + ECMP tie-breaking applied to a ranking (the shared tail of
  /// all select_pop flavours). `force_flip` unconditionally swaps the
  /// top 2 (scenario overlay); otherwise the model's own flip state rules.
  PopChoice finish_choice(const AttachPoint& from, const Deployment& dep,
                          SimTime when, std::uint64_t flow_hash,
                          std::uint64_t packet_seq, Ranking ranking,
                          bool force_flip = false) const;

  const AsGraph& graph_;
  RoutingConfig config_;
  std::size_t city_count_;
  std::vector<float> city_dist_;  // row-major city distance matrix

  // Cache telemetry (process-wide; the caches themselves live with the
  // caller, see Caches).
  obs::Counter* delay_cache_hits_ = nullptr;
  obs::Counter* delay_cache_misses_ = nullptr;
  obs::Counter* catchment_cache_hits_ = nullptr;
  obs::Counter* catchment_cache_misses_ = nullptr;
};

}  // namespace laces::topo
