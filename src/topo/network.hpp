// SimNetwork: packet-level transport over the simulated Internet.
//
// Measurement components attach interfaces (address + physical attach
// point + receive handler) — attaching the *same* address at multiple
// sites is exactly what announcing an anycast prefix does, and the
// catchment selection of RoutingModel decides which site receives any
// given response. Probes to world targets are answered by the target's
// ResponderConfig at whichever PoP the probe lands on.
//
// --- Sharded execution (enable_sharding) ---
//
// The per-target half of packet processing — catchment selection, delay
// computation, rate limiting, CHAOS rotation, response crafting — is a
// pure function of the immutable World plus small per-target state, so it
// parallelizes: targets are partitioned over shards 1..S-1 by a stable
// hash of their census prefix, while shard 0 (the caller's thread and
// queue) keeps the entire control plane: orchestrator, workers, channels,
// every send() and every locally-announced address. A probe then takes a
// deterministic two-hop path
//
//   shard 0 send(t=tau)  --post-->  target shard: ingress choice + serve
//                                    at tau + d1 (+ internal)
//   target shard         --post-->  shard 0: VP catchment choice, handler
//                                    delivery at t2 + d2
//
// where every stochastic quantity (loss, jitter, ECMP, flips, rate-limit
// rolls) is a StableHash of packet identity — day, flow hash, per-flow
// counter — never of execution order. Combined with ShardedLoop's
// canonical merge order this makes census/trace/archive output
// byte-identical at any shard count (the 1/2/4/8-shard equivalence tests),
// and 1-shard mode byte-identical to the historical sequential loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/addr_map.hpp"
#include "net/ip.hpp"
#include "topo/overlay.hpp"
#include "topo/world.hpp"
#include "util/event_queue.hpp"
#include "util/flat_map.hpp"
#include "util/sharded_loop.hpp"

namespace laces::topo {

struct NetworkConfig {
  /// ICMP rate limiting at targets: responses to probes arriving closer
  /// together than this are dropped with `rate_limit_drop` probability
  /// (why probe offsets matter, paper R3/§5.1.5).
  SimDuration rate_limit_window = SimDuration::millis(5);
  double rate_limit_drop = 0.25;
  /// Uniform packet loss probability (each direction).
  double loss = 0.002;
};

/// One address announced at one physical location with a receive callback.
struct Interface {
  net::IpAddress address;
  AttachPoint attach;
};

class SimNetwork {
 public:
  using RxHandler =
      std::function<void(const net::Datagram& datagram, SimTime rx_time)>;

  SimNetwork(const World& world, EventQueue& events, NetworkConfig config = {});

  /// Announce `addr` at `attach`; responses routed to `addr` whose
  /// catchment selects this site invoke `handler`. Returns an id usable
  /// with detach() (worker-outage simulation, R5). Only ever touched from
  /// shard 0 (the control plane), including under sharded execution.
  std::uint64_t attach(const net::IpAddress& addr, const AttachPoint& attach,
                       RxHandler handler);

  /// Withdraw one interface (BGP withdraw at one site): remaining sites
  /// announcing the same address absorb its catchment.
  void detach(std::uint64_t interface_id);

  /// Inject a datagram into the network at `from`. Typically a probe; the
  /// target's response (if any) is routed and delivered asynchronously.
  void send(const net::Datagram& datagram, const AttachPoint& from);

  /// Partition target-side packet processing over `shards` event-loop
  /// shards driven by run_events(). Call once, before any traffic;
  /// `shards == 1` keeps everything on the caller's queue (and reproduces
  /// the sequential byte stream trivially). The epoch lookahead is the
  /// model's per-hop forwarding latency — the minimum time any packet
  /// needs to cross between shards.
  void enable_sharding(std::size_t shards);
  std::size_t shards() const { return engine_ ? engine_->shards() : 1; }

  /// Drive the simulation to quiescence: EventQueue::run() when unsharded,
  /// the barrier-epoch loop over all shards otherwise. All session /
  /// platform drive sites route through here. Returns events executed.
  std::size_t run_events();

  /// The census day, gating temporary anycast and daily churn. Routing
  /// caches deliberately persist across days: cached values are pure
  /// functions of the immutable world, so later census days of a
  /// longitudinal run reuse the catchments and delays of earlier ones.
  /// Ephemeral per-packet state (per-flow ECMP and salt counters) does NOT
  /// persist: it restarts at each day change, making a census day a pure
  /// function of (world, day, carried measurement state) — the property
  /// laces_store checkpoint/resume relies on, since a resumed process has
  /// no packet history.
  void set_day(std::uint32_t day) {
    if (day != day_) {
      flow_seq_.clear();
      send_seq_.clear();
    }
    day_ = day;
  }
  std::uint32_t day() const { return day_; }

  /// Install (or clear, with nullptr) the scenario data-plane overlay for
  /// the current day. The overlay must outlive event processing and may
  /// only be swapped between run_events() calls — it is read concurrently
  /// from target shards during a run, and the barrier between runs is the
  /// happens-before edge that makes the swap safe.
  void set_day_overlay(const DayOverlay* overlay) { overlay_ = overlay; }
  const DayOverlay* day_overlay() const { return overlay_; }

  SimTime now() const { return events_.now(); }
  EventQueue& events() { return events_; }
  const World& world() const { return world_; }
  /// The sharded engine, when enabled (run-report telemetry).
  const ShardedLoop* engine() const { return engine_.get(); }

  // --- counters (probing-cost accounting, Table 5) ---
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t responses_generated() const;
  std::uint64_t deliveries() const { return deliveries_; }

  // --- scenario-overlay counters (run-report "Scenario" section) ---
  std::uint64_t overlay_withdrawn() const { return overlay_withdrawn_; }
  std::uint64_t overlay_path_lost() const { return overlay_path_lost_; }
  std::uint64_t overlay_flips() const;

 private:
  struct Endpoint {
    std::uint64_t id = 0;
    AttachPoint attach;
    RxHandler handler;
  };
  struct LocalAddress {
    std::vector<Endpoint> endpoints;
    DeploymentId pseudo_id = 0;  // perturbation identity for catchments
    /// Catchment view over `endpoints`, rebuilt on attach/detach so the
    /// per-packet hot path never allocates a transient Deployment.
    Deployment view;
    /// Per-sender ranking memo for `view`, invalidated whenever the
    /// endpoint set changes (owned here, not in RoutingModel, so two
    /// addresses can never alias each other's rankings).
    mutable FlatMap64<RoutingModel::Ranking> catchment;
  };

  /// Mutable per-shard simulation state. Shard 0's entry doubles as the
  /// state of the sequential loop; entries 1..S-1 are owned by their
  /// worker threads during a run. Routing caches are per shard (cache
  /// *content* then differs per shard, but every cached value is a pure
  /// function of the immutable world, so routed outcomes do not).
  struct ShardState {
    RoutingModel::Caches caches;
    FlatMap64<SimTime> last_arrival;          // ICMP rate limiting, per target
    FlatMap64<std::uint64_t> chaos_rotation;  // per (target, pop)
    std::uint64_t responses_generated = 0;
    std::uint64_t overlay_flips = 0;  // scenario route-flips on this shard
  };

  static void rebuild_view(LocalAddress& local);
  /// Catchment choice + delivery scheduling for a locally announced
  /// address. `when` is the packet's departure time toward the VP: equal
  /// to now() on the sequential path, carried explicitly when the response
  /// crossed shards (so route-flip epochs and the delivery timestamp are
  /// independent of when the event executes).
  void deliver_local(const LocalAddress& local, const net::Datagram& datagram,
                     const AttachPoint& from, std::uint64_t salt, SimTime when);
  void respond_local(const net::Datagram& datagram, const AttachPoint& from,
                     std::uint64_t salt, SimTime when);
  void deliver_to_target(const net::Datagram& datagram,
                         const AttachPoint& from, std::uint64_t flow_hash,
                         std::uint64_t salt);
  /// Target-side hop 1: ingress PoP choice and serve scheduling. Runs on
  /// `shard` (inline on shard 0 when unsharded). `departed` is the probe's
  /// send() time.
  void target_ingress(const net::Datagram& datagram, const AttachPoint& from,
                      std::uint64_t flow_hash, std::uint64_t salt,
                      std::uint64_t packet_seq, DeploymentId dep_id,
                      const Target* target, std::size_t shard,
                      SimTime departed);
  /// Target-side hop 2: rate limiting, response crafting, egress. Runs on
  /// `shard` at `arrival`.
  void target_serve(const net::Datagram& datagram, DeploymentId dep_id,
                    std::size_t ingress_pop, const Target* target,
                    std::uint64_t salt, std::size_t shard, SimTime arrival);
  std::uint64_t next_flow_seq(std::uint64_t flow_hash);
  /// Per-packet loss/jitter salt: a stable hash of (day, flow hash,
  /// per-flow send counter) — pure packet identity, no global ordering, so
  /// any partition of the packet stream over shards rolls the same dice.
  std::uint64_t next_packet_salt(std::uint64_t flow_hash);
  static std::uint64_t response_salt_of(std::uint64_t probe_salt);
  bool drop_packet(std::uint64_t salt);
  /// Which shard serves this destination (stable hash of its census
  /// prefix; 0 when unsharded).
  std::size_t shard_of(const net::IpAddress& dst) const;
  EventQueue& shard_queue(std::size_t shard) {
    return shard == 0 ? events_ : engine_->queue(shard);
  }
  void publish_engine_gauges();

  const World& world_;
  EventQueue& events_;
  NetworkConfig config_;
  std::unique_ptr<ShardedLoop> engine_;
  std::vector<ShardState> shard_states_;
  std::uint32_t day_ = 0;
  std::uint64_t next_interface_id_ = 1;
  net::AddrMap<LocalAddress> local_;
  FlatMap64<net::IpAddress> iface_addr_;  // interface id -> announced addr
  FlatMap64<std::uint64_t> flow_seq_;
  FlatMap64<std::uint64_t> send_seq_;  // per-flow salt counter (shard 0)
  std::uint64_t packets_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  const DayOverlay* overlay_ = nullptr;
  std::uint64_t overlay_withdrawn_ = 0;  // shard 0 only
  std::uint64_t overlay_path_lost_ = 0;  // shard 0 only
};

/// Hash of the flow headers only (addresses, protocol, ports / ICMP id) —
/// per-flow load balancers see nothing else (paper §5.1.4).
std::uint64_t flow_hash_of(const net::Datagram& datagram);

}  // namespace laces::topo
