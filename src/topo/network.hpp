// SimNetwork: packet-level transport over the simulated Internet.
//
// Measurement components attach interfaces (address + physical attach
// point + receive handler) — attaching the *same* address at multiple
// sites is exactly what announcing an anycast prefix does, and the
// catchment selection of RoutingModel decides which site receives any
// given response. Probes to world targets are answered by the target's
// ResponderConfig at whichever PoP the probe lands on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/addr_map.hpp"
#include "net/ip.hpp"
#include "topo/world.hpp"
#include "util/event_queue.hpp"
#include "util/flat_map.hpp"

namespace laces::topo {

struct NetworkConfig {
  /// ICMP rate limiting at targets: responses to probes arriving closer
  /// together than this are dropped with `rate_limit_drop` probability
  /// (why probe offsets matter, paper R3/§5.1.5).
  SimDuration rate_limit_window = SimDuration::millis(5);
  double rate_limit_drop = 0.25;
  /// Uniform packet loss probability (each direction).
  double loss = 0.002;
};

/// One address announced at one physical location with a receive callback.
struct Interface {
  net::IpAddress address;
  AttachPoint attach;
};

class SimNetwork {
 public:
  using RxHandler =
      std::function<void(const net::Datagram& datagram, SimTime rx_time)>;

  SimNetwork(const World& world, EventQueue& events, NetworkConfig config = {});

  /// Announce `addr` at `attach`; responses routed to `addr` whose
  /// catchment selects this site invoke `handler`. Returns an id usable
  /// with detach() (worker-outage simulation, R5).
  std::uint64_t attach(const net::IpAddress& addr, const AttachPoint& attach,
                       RxHandler handler);

  /// Withdraw one interface (BGP withdraw at one site): remaining sites
  /// announcing the same address absorb its catchment.
  void detach(std::uint64_t interface_id);

  /// Inject a datagram into the network at `from`. Typically a probe; the
  /// target's response (if any) is routed and delivered asynchronously.
  void send(const net::Datagram& datagram, const AttachPoint& from);

  /// The census day, gating temporary anycast and daily churn. Routing
  /// caches deliberately persist across days: cached values are pure
  /// functions of the immutable world, so later census days of a
  /// longitudinal run reuse the catchments and delays of earlier ones.
  /// Ephemeral per-packet state (per-flow ECMP counters, the loss salt)
  /// does NOT persist: it restarts at each day change, making a census day
  /// a pure function of (world, day, carried measurement state) — the
  /// property laces_store checkpoint/resume relies on, since a resumed
  /// process has no packet history.
  void set_day(std::uint32_t day) {
    if (day != day_) {
      flow_seq_.clear();
      next_salt_ = 1;
    }
    day_ = day;
  }
  std::uint32_t day() const { return day_; }

  SimTime now() const { return events_.now(); }
  EventQueue& events() { return events_; }
  const World& world() const { return world_; }

  // --- counters (probing-cost accounting, Table 5) ---
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t responses_generated() const { return responses_generated_; }
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  struct Endpoint {
    std::uint64_t id = 0;
    AttachPoint attach;
    RxHandler handler;
  };
  struct LocalAddress {
    std::vector<Endpoint> endpoints;
    DeploymentId pseudo_id = 0;  // perturbation identity for catchments
    /// Catchment view over `endpoints`, rebuilt on attach/detach so the
    /// per-packet hot path never allocates a transient Deployment.
    Deployment view;
    /// Per-sender ranking memo for `view`, invalidated whenever the
    /// endpoint set changes (owned here, not in RoutingModel, so two
    /// addresses can never alias each other's rankings).
    mutable FlatMap64<RoutingModel::Ranking> catchment;
  };

  static void rebuild_view(LocalAddress& local);
  void deliver_local(const net::Datagram& datagram, const AttachPoint& from,
                     std::uint64_t salt);
  void deliver_local(const LocalAddress& local, const net::Datagram& datagram,
                     const AttachPoint& from, std::uint64_t salt);
  void deliver_to_target(const net::Datagram& datagram,
                         const AttachPoint& from, std::uint64_t salt);
  std::uint64_t next_flow_seq(std::uint64_t flow_hash);
  bool drop_packet(std::uint64_t salt);

  const World& world_;
  EventQueue& events_;
  NetworkConfig config_;
  /// Per-run routing memoization (see RoutingModel::Caches): cold at
  /// construction, warm across census days of this network's lifetime.
  mutable RoutingModel::Caches route_caches_;
  std::uint32_t day_ = 0;
  std::uint64_t next_interface_id_ = 1;
  std::uint64_t next_salt_ = 1;
  net::AddrMap<LocalAddress> local_;
  FlatMap64<net::IpAddress> iface_addr_;  // interface id -> announced addr
  FlatMap64<std::uint64_t> flow_seq_;
  FlatMap64<SimTime> last_arrival_;  // per target
  FlatMap64<std::uint64_t> chaos_rotation_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t responses_generated_ = 0;
  std::uint64_t deliveries_ = 0;
};

/// Hash of the flow headers only (addresses, protocol, ports / ICMP id) —
/// per-flow load balancers see nothing else (paper §5.1.4).
std::uint64_t flow_hash_of(const net::Datagram& datagram);

}  // namespace laces::topo
