#include "topo/types.hpp"

namespace laces::topo {

bool is_anycast_ground_truth(DeploymentKind kind, bool temporary_active) {
  switch (kind) {
    case DeploymentKind::kUnicast:
    case DeploymentKind::kGlobalBgpUnicast:
      return false;
    case DeploymentKind::kAnycastGlobal:
    case DeploymentKind::kAnycastRegional:
      return true;
    case DeploymentKind::kTemporaryAnycast:
      return temporary_active;
  }
  return false;
}

bool Deployment::anycast_active(std::uint32_t day) const {
  if (kind != DeploymentKind::kTemporaryAnycast) {
    return kind == DeploymentKind::kAnycastGlobal ||
           kind == DeploymentKind::kAnycastRegional;
  }
  return ((day + temp_phase) % temp_period_days) < temp_active_days;
}

std::size_t Deployment::active_pop_count(std::uint32_t day) const {
  if (kind == DeploymentKind::kUnicast) return 1;
  if (kind == DeploymentKind::kTemporaryAnycast && !anycast_active(day)) {
    return 1;
  }
  return pops.size();
}

}  // namespace laces::topo
