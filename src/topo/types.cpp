#include "topo/types.hpp"

namespace laces::topo {

bool is_anycast_ground_truth(DeploymentKind kind, bool temporary_active) {
  switch (kind) {
    case DeploymentKind::kUnicast:
    case DeploymentKind::kGlobalBgpUnicast:
      return false;
    case DeploymentKind::kAnycastGlobal:
    case DeploymentKind::kAnycastRegional:
      return true;
    case DeploymentKind::kTemporaryAnycast:
      return temporary_active;
  }
  return false;
}

bool Deployment::anycast_active(std::uint32_t day) const {
  if (kind != DeploymentKind::kTemporaryAnycast) {
    return kind == DeploymentKind::kAnycastGlobal ||
           kind == DeploymentKind::kAnycastRegional;
  }
  return ((day + temp_phase) % temp_period_days) < temp_active_days;
}

void Deployment::finalize_layout() {
  pop_city.resize(pops.size());
  pop_upstream.resize(pops.size());
  for (std::size_t i = 0; i < pops.size(); ++i) {
    pop_city[i] = static_cast<std::uint16_t>(pops[i].attach.city);
    pop_upstream[i] = static_cast<std::uint16_t>(pops[i].attach.upstream);
  }
}

std::size_t Deployment::active_pop_count(std::uint32_t day) const {
  if (kind == DeploymentKind::kUnicast) return 1;
  if (kind == DeploymentKind::kTemporaryAnycast && !anycast_active(day)) {
    return 1;
  }
  return pops.size();
}

}  // namespace laces::topo
