#include "topo/as_graph.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "geo/coord.hpp"
#include "util/contracts.hpp"

namespace laces::topo {
namespace {

void link(std::vector<AsNode>& nodes, AsId a, AsId b) {
  if (a == b) return;
  auto& na = nodes[a].neighbors;
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  nodes[b].neighbors.push_back(a);
}

/// Picks `k` indices from `candidates` biased toward geographic proximity
/// to `home` (closest-first with random skips, so graphs vary with the seed
/// but stay geographically plausible).
std::vector<AsId> pick_close(const std::vector<AsNode>& nodes,
                             const std::vector<AsId>& candidates,
                             geo::CityId home, std::size_t k, Rng& rng) {
  std::vector<std::pair<double, AsId>> scored;
  scored.reserve(candidates.size());
  const auto& home_loc = geo::city(home).location;
  for (AsId c : candidates) {
    const double d = geo::distance_km(home_loc, geo::city(nodes[c].home).location);
    scored.emplace_back(d + rng.uniform(0.0, 2500.0), c);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<AsId> out;
  for (std::size_t i = 0; i < scored.size() && out.size() < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace

AsGraph AsGraph::generate(const AsGraphConfig& config, Rng& rng) {
  expects(config.tier1_count >= 2, "at least two tier-1 ASes");
  expects(config.transit_count >= config.transit_uplinks, "enough transits");

  AsGraph g;
  auto& nodes = g.nodes_;
  nodes.reserve(config.tier1_count + config.transit_count + config.stub_count);

  const auto cities = geo::world_cities();
  auto random_city = [&]() -> geo::CityId {
    return static_cast<geo::CityId>(rng.index(cities.size()));
  };

  // Synthetic ASNs: tier-1s get low numbers, then transit, then stubs.
  Asn next_asn = 100;
  std::vector<AsId> tier1_ids, transit_ids;

  for (std::size_t i = 0; i < config.tier1_count; ++i) {
    AsNode n;
    n.asn = next_asn++;
    n.tier = AsTier::kTier1;
    n.home = random_city();
    tier1_ids.push_back(static_cast<AsId>(nodes.size()));
    nodes.push_back(std::move(n));
  }
  // Tier-1 full mesh (the default-free zone clique).
  for (std::size_t i = 0; i < tier1_ids.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1_ids.size(); ++j) {
      link(nodes, tier1_ids[i], tier1_ids[j]);
    }
  }

  next_asn = 1000;
  for (std::size_t i = 0; i < config.transit_count; ++i) {
    AsNode n;
    n.asn = next_asn++;
    n.tier = AsTier::kTransit;
    n.home = random_city();
    const AsId id = static_cast<AsId>(nodes.size());
    transit_ids.push_back(id);
    nodes.push_back(std::move(n));
    for (AsId up :
         pick_close(nodes, tier1_ids, nodes[id].home, config.transit_uplinks,
                    rng)) {
      link(nodes, id, up);
    }
  }
  // Lateral transit peering (keeps regional paths short, as IXPs do).
  for (AsId t : transit_ids) {
    for (AsId peer : pick_close(nodes, transit_ids, nodes[t].home,
                                config.transit_peers + 1, rng)) {
      if (peer != t) link(nodes, t, peer);
    }
  }

  next_asn = 20000;
  for (std::size_t i = 0; i < config.stub_count; ++i) {
    AsNode n;
    n.asn = next_asn++;
    n.tier = AsTier::kStub;
    n.home = random_city();
    const AsId id = static_cast<AsId>(nodes.size());
    nodes.push_back(std::move(n));
    for (AsId up : pick_close(nodes, transit_ids, nodes[id].home,
                              config.stub_uplinks, rng)) {
      link(nodes, id, up);
    }
  }

  return g;
}

const AsNode& AsGraph::node(AsId id) const {
  expects(id < nodes_.size(), "valid AS id");
  return nodes_[id];
}

std::vector<AsId> AsGraph::path(AsId from, AsId to) const {
  expects(from < nodes_.size() && to < nodes_.size(), "valid AS ids");
  const auto& dist = hops_from(from);
  if (dist[to] == kUnreachable) return {};
  // Walk backwards from `to`, always stepping to a neighbor one hop closer
  // to `from` (lowest id on ties for determinism).
  std::vector<AsId> reversed{to};
  AsId cur = to;
  while (cur != from) {
    AsId next = kNoAs;
    for (const AsId n : nodes_[cur].neighbors) {
      if (dist[n] + 1 == dist[cur] && (next == kNoAs || n < next)) next = n;
    }
    expects(next != kNoAs, "BFS predecessor exists");
    reversed.push_back(next);
    cur = next;
  }
  return {reversed.rbegin(), reversed.rend()};
}

const std::vector<std::uint16_t>& AsGraph::hops_from(AsId src) const {
  expects(src < nodes_.size(), "valid AS id");
  if (bfs_cache_.empty()) bfs_cache_.resize(nodes_.size());
  if (const auto& cached = bfs_cache_[src]) return *cached;

  auto dist = std::make_unique<std::vector<std::uint16_t>>(nodes_.size(),
                                                           kUnreachable);
  std::deque<AsId> queue;
  (*dist)[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const AsId cur = queue.front();
    queue.pop_front();
    for (AsId next : nodes_[cur].neighbors) {
      if ((*dist)[next] == kUnreachable) {
        (*dist)[next] = static_cast<std::uint16_t>((*dist)[cur] + 1);
        queue.push_back(next);
      }
    }
  }
  bfs_cache_[src] = std::move(dist);
  return *bfs_cache_[src];
}

}  // namespace laces::topo
