// Embedded world-city database.
//
// ~300 major cities with coordinates and metro population. Two consumers:
//   * the Internet simulator places PoPs and vantage points in real metros
//     (e.g. the 32 Vultr sites of the MAnycastR production deployment);
//   * iGreedy's geolocation step picks the most populous city inside each
//     latency disc (paper §2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/coord.hpp"
#include "geo/disc.hpp"

namespace laces::geo {

enum class Continent : std::uint8_t {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAfrica,
  kAsia,
  kOceania,
};

/// Short human-readable continent label ("NA", "SA", "EU", ...).
std::string_view to_string(Continent c);

/// Index into world_cities(); stable across runs.
using CityId = std::uint32_t;

struct City {
  std::string_view name;
  std::string_view country;  // ISO 3166-1 alpha-2
  Continent continent;
  GeoPoint location;
  std::uint32_t population;  // metro population estimate
};

/// The full embedded database, ordered by CityId.
std::span<const City> world_cities();

/// Case-sensitive exact-name lookup.
std::optional<CityId> find_city(std::string_view name);

/// The city record for an id. Precondition: id < world_cities().size().
const City& city(CityId id);

/// Ids of all cities inside `disc`.
std::vector<CityId> cities_within(const Disc& disc);

/// The most populous city inside `disc`, if any — iGreedy's geolocation
/// heuristic for placing an anycast site.
std::optional<CityId> most_populous_within(const Disc& disc);

/// The city nearest to `p` (always exists; the database is non-empty).
CityId nearest_city(const GeoPoint& p);

}  // namespace laces::geo
