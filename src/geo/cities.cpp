#include "geo/cities.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "util/contracts.hpp"

namespace laces::geo {
namespace {

constexpr auto NA = Continent::kNorthAmerica;
constexpr auto SA = Continent::kSouthAmerica;
constexpr auto EU = Continent::kEurope;
constexpr auto AF = Continent::kAfrica;
constexpr auto AS = Continent::kAsia;
constexpr auto OC = Continent::kOceania;

// Coordinates and metro populations are approximate; the simulator needs
// plausible geography, not survey-grade data.
constexpr City kCities[] = {
    // --- North America ---
    {"New York", "US", NA, {40.71, -74.01}, 18800000},
    {"Newark", "US", NA, {40.74, -74.17}, 2800000},
    {"Los Angeles", "US", NA, {34.05, -118.24}, 13200000},
    {"Chicago", "US", NA, {41.88, -87.63}, 9500000},
    {"Houston", "US", NA, {29.76, -95.37}, 7100000},
    {"Phoenix", "US", NA, {33.45, -112.07}, 4900000},
    {"Philadelphia", "US", NA, {39.95, -75.17}, 6100000},
    {"San Antonio", "US", NA, {29.42, -98.49}, 2600000},
    {"San Diego", "US", NA, {32.72, -117.16}, 3300000},
    {"Dallas", "US", NA, {32.78, -96.80}, 7600000},
    {"San Jose", "US", NA, {37.34, -121.89}, 2000000},
    {"San Francisco", "US", NA, {37.77, -122.42}, 4700000},
    {"Austin", "US", NA, {30.27, -97.74}, 2300000},
    {"Jacksonville", "US", NA, {30.33, -81.66}, 1600000},
    {"Columbus", "US", NA, {39.96, -83.00}, 2100000},
    {"Charlotte", "US", NA, {35.23, -80.84}, 2700000},
    {"Indianapolis", "US", NA, {39.77, -86.16}, 2100000},
    {"Seattle", "US", NA, {47.61, -122.33}, 4000000},
    {"Denver", "US", NA, {39.74, -104.99}, 3000000},
    {"Washington", "US", NA, {38.91, -77.04}, 6400000},
    {"Boston", "US", NA, {42.36, -71.06}, 4900000},
    {"Nashville", "US", NA, {36.16, -86.78}, 2000000},
    {"Detroit", "US", NA, {42.33, -83.05}, 4300000},
    {"Portland", "US", NA, {45.52, -122.68}, 2500000},
    {"Las Vegas", "US", NA, {36.17, -115.14}, 2300000},
    {"Memphis", "US", NA, {35.15, -90.05}, 1300000},
    {"Baltimore", "US", NA, {39.29, -76.61}, 2800000},
    {"Milwaukee", "US", NA, {43.04, -87.91}, 1600000},
    {"Albuquerque", "US", NA, {35.08, -106.65}, 900000},
    {"Sacramento", "US", NA, {38.58, -121.49}, 2400000},
    {"Kansas City", "US", NA, {39.10, -94.58}, 2200000},
    {"Atlanta", "US", NA, {33.75, -84.39}, 6100000},
    {"Miami", "US", NA, {25.76, -80.19}, 6200000},
    {"Omaha", "US", NA, {41.26, -95.93}, 1000000},
    {"Minneapolis", "US", NA, {44.98, -93.27}, 3700000},
    {"New Orleans", "US", NA, {29.95, -90.07}, 1300000},
    {"Cleveland", "US", NA, {41.50, -81.69}, 2100000},
    {"Tampa", "US", NA, {27.95, -82.46}, 3200000},
    {"Pittsburgh", "US", NA, {40.44, -79.99}, 2300000},
    {"St. Louis", "US", NA, {38.63, -90.20}, 2800000},
    {"Cincinnati", "US", NA, {39.10, -84.51}, 2300000},
    {"Salt Lake City", "US", NA, {40.76, -111.89}, 1300000},
    {"Orlando", "US", NA, {28.54, -81.38}, 2700000},
    {"Honolulu", "US", NA, {21.31, -157.86}, 1000000},
    {"Anchorage", "US", NA, {61.22, -149.90}, 400000},
    {"Toronto", "CA", NA, {43.65, -79.38}, 6300000},
    {"Montreal", "CA", NA, {45.50, -73.57}, 4300000},
    {"Vancouver", "CA", NA, {49.28, -123.12}, 2600000},
    {"Calgary", "CA", NA, {51.05, -114.07}, 1500000},
    {"Ottawa", "CA", NA, {45.42, -75.70}, 1400000},
    {"Edmonton", "CA", NA, {53.55, -113.49}, 1400000},
    {"Winnipeg", "CA", NA, {49.90, -97.14}, 800000},
    {"Quebec City", "CA", NA, {46.81, -71.21}, 800000},
    {"Halifax", "CA", NA, {44.65, -63.58}, 450000},
    {"Mexico City", "MX", NA, {19.43, -99.13}, 21800000},
    {"Guadalajara", "MX", NA, {20.67, -103.35}, 5300000},
    {"Monterrey", "MX", NA, {25.69, -100.32}, 5300000},
    {"Tijuana", "MX", NA, {32.51, -117.04}, 2200000},
    {"Cancun", "MX", NA, {21.16, -86.85}, 900000},
    {"Havana", "CU", NA, {23.11, -82.37}, 2100000},
    {"Santo Domingo", "DO", NA, {18.49, -69.93}, 3300000},
    {"San Juan", "PR", NA, {18.47, -66.11}, 2400000},
    {"Panama City", "PA", NA, {8.98, -79.52}, 1900000},
    {"San Jose CR", "CR", NA, {9.93, -84.08}, 1400000},
    {"Guatemala City", "GT", NA, {14.63, -90.51}, 3000000},
    {"Kingston", "JM", NA, {18.02, -76.80}, 1200000},

    // --- South America ---
    {"Sao Paulo", "BR", SA, {-23.55, -46.63}, 22400000},
    {"Rio de Janeiro", "BR", SA, {-22.91, -43.17}, 13500000},
    {"Brasilia", "BR", SA, {-15.79, -47.88}, 4700000},
    {"Salvador", "BR", SA, {-12.97, -38.50}, 3900000},
    {"Fortaleza", "BR", SA, {-3.72, -38.54}, 4100000},
    {"Belo Horizonte", "BR", SA, {-19.92, -43.94}, 6000000},
    {"Manaus", "BR", SA, {-3.12, -60.02}, 2600000},
    {"Curitiba", "BR", SA, {-25.43, -49.27}, 3700000},
    {"Recife", "BR", SA, {-8.05, -34.88}, 4100000},
    {"Porto Alegre", "BR", SA, {-30.03, -51.23}, 4300000},
    {"Buenos Aires", "AR", SA, {-34.60, -58.38}, 15400000},
    {"Cordoba", "AR", SA, {-31.42, -64.19}, 1600000},
    {"Rosario", "AR", SA, {-32.95, -60.64}, 1400000},
    {"Santiago", "CL", SA, {-33.45, -70.67}, 6800000},
    {"Valparaiso", "CL", SA, {-33.05, -71.62}, 1000000},
    {"Lima", "PE", SA, {-12.05, -77.04}, 10700000},
    {"Bogota", "CO", SA, {4.71, -74.07}, 10900000},
    {"Medellin", "CO", SA, {6.25, -75.56}, 4000000},
    {"Cali", "CO", SA, {3.45, -76.53}, 2800000},
    {"Caracas", "VE", SA, {10.48, -66.90}, 2900000},
    {"Quito", "EC", SA, {-0.18, -78.47}, 2000000},
    {"Guayaquil", "EC", SA, {-2.19, -79.89}, 3000000},
    {"La Paz", "BO", SA, {-16.49, -68.12}, 1800000},
    {"Montevideo", "UY", SA, {-34.90, -56.16}, 1700000},
    {"Asuncion", "PY", SA, {-25.26, -57.58}, 2300000},

    // --- Europe ---
    {"London", "GB", EU, {51.51, -0.13}, 14300000},
    {"Manchester", "GB", EU, {53.48, -2.24}, 2800000},
    {"Birmingham", "GB", EU, {52.49, -1.89}, 2900000},
    {"Glasgow", "GB", EU, {55.86, -4.25}, 1700000},
    {"Edinburgh", "GB", EU, {55.95, -3.19}, 900000},
    {"Dublin", "IE", EU, {53.35, -6.26}, 2100000},
    {"Paris", "FR", EU, {48.86, 2.35}, 13000000},
    {"Lyon", "FR", EU, {45.76, 4.84}, 2300000},
    {"Marseille", "FR", EU, {43.30, 5.37}, 1900000},
    {"Toulouse", "FR", EU, {43.60, 1.44}, 1400000},
    {"Madrid", "ES", EU, {40.42, -3.70}, 6700000},
    {"Barcelona", "ES", EU, {41.39, 2.17}, 5600000},
    {"Valencia", "ES", EU, {39.47, -0.38}, 1800000},
    {"Seville", "ES", EU, {37.39, -5.98}, 1500000},
    {"Lisbon", "PT", EU, {38.72, -9.14}, 2900000},
    {"Porto", "PT", EU, {41.15, -8.61}, 1700000},
    {"Amsterdam", "NL", EU, {52.37, 4.89}, 2500000},
    {"Rotterdam", "NL", EU, {51.92, 4.48}, 1800000},
    {"The Hague", "NL", EU, {52.08, 4.30}, 1100000},
    {"Brussels", "BE", EU, {50.85, 4.35}, 2100000},
    {"Antwerp", "BE", EU, {51.22, 4.40}, 1100000},
    {"Luxembourg", "LU", EU, {49.61, 6.13}, 650000},
    {"Frankfurt", "DE", EU, {50.11, 8.68}, 2700000},
    {"Berlin", "DE", EU, {52.52, 13.40}, 4500000},
    {"Munich", "DE", EU, {48.14, 11.58}, 2900000},
    {"Hamburg", "DE", EU, {53.55, 9.99}, 3100000},
    {"Cologne", "DE", EU, {50.94, 6.96}, 2100000},
    {"Stuttgart", "DE", EU, {48.78, 9.18}, 2700000},
    {"Dusseldorf", "DE", EU, {51.23, 6.78}, 1600000},
    {"Leipzig", "DE", EU, {51.34, 12.37}, 1000000},
    {"Zurich", "CH", EU, {47.37, 8.55}, 1500000},
    {"Geneva", "CH", EU, {46.20, 6.14}, 1000000},
    {"Vienna", "AT", EU, {48.21, 16.37}, 2900000},
    {"Prague", "CZ", EU, {50.08, 14.42}, 2700000},
    {"Brno", "CZ", EU, {49.20, 16.61}, 700000},
    {"Bratislava", "SK", EU, {48.15, 17.11}, 700000},
    {"Budapest", "HU", EU, {47.50, 19.04}, 3000000},
    {"Warsaw", "PL", EU, {52.23, 21.01}, 3100000},
    {"Krakow", "PL", EU, {50.06, 19.94}, 1500000},
    {"Wroclaw", "PL", EU, {51.11, 17.03}, 1200000},
    {"Gdansk", "PL", EU, {54.35, 18.65}, 1100000},
    {"Copenhagen", "DK", EU, {55.68, 12.57}, 2100000},
    {"Aarhus", "DK", EU, {56.16, 10.20}, 950000},
    {"Stockholm", "SE", EU, {59.33, 18.07}, 2400000},
    {"Gothenburg", "SE", EU, {57.71, 11.97}, 1100000},
    {"Oslo", "NO", EU, {59.91, 10.75}, 1600000},
    {"Helsinki", "FI", EU, {60.17, 24.94}, 1500000},
    {"Reykjavik", "IS", EU, {64.15, -21.94}, 240000},
    {"Rome", "IT", EU, {41.90, 12.50}, 4300000},
    {"Milan", "IT", EU, {45.46, 9.19}, 4300000},
    {"Naples", "IT", EU, {40.85, 14.27}, 3100000},
    {"Turin", "IT", EU, {45.07, 7.69}, 1700000},
    {"Athens", "GR", EU, {37.98, 23.73}, 3600000},
    {"Thessaloniki", "GR", EU, {40.64, 22.94}, 1100000},
    {"Bucharest", "RO", EU, {44.43, 26.10}, 2300000},
    {"Sofia", "BG", EU, {42.70, 23.32}, 1700000},
    {"Belgrade", "RS", EU, {44.79, 20.45}, 1700000},
    {"Zagreb", "HR", EU, {45.81, 15.98}, 1100000},
    {"Ljubljana", "SI", EU, {46.06, 14.51}, 540000},
    {"Sarajevo", "BA", EU, {43.86, 18.41}, 550000},
    {"Skopje", "MK", EU, {41.99, 21.43}, 600000},
    {"Tirana", "AL", EU, {41.33, 19.82}, 900000},
    {"Kyiv", "UA", EU, {50.45, 30.52}, 3500000},
    {"Kharkiv", "UA", EU, {49.99, 36.23}, 1400000},
    {"Odesa", "UA", EU, {46.48, 30.73}, 1000000},
    {"Lviv", "UA", EU, {49.84, 24.03}, 750000},
    {"Minsk", "BY", EU, {53.90, 27.56}, 2000000},
    {"Moscow", "RU", EU, {55.76, 37.62}, 17100000},
    {"Saint Petersburg", "RU", EU, {59.93, 30.34}, 5500000},
    {"Novosibirsk", "RU", AS, {55.01, 82.94}, 1600000},
    {"Yekaterinburg", "RU", AS, {56.84, 60.61}, 1500000},
    {"Kazan", "RU", EU, {55.80, 49.11}, 1300000},
    {"Riga", "LV", EU, {56.95, 24.11}, 1000000},
    {"Vilnius", "LT", EU, {54.69, 25.28}, 700000},
    {"Tallinn", "EE", EU, {59.44, 24.75}, 600000},
    {"Chisinau", "MD", EU, {47.01, 28.86}, 700000},

    // --- Middle East (grouped with Asia) ---
    {"Istanbul", "TR", AS, {41.01, 28.98}, 15500000},
    {"Ankara", "TR", AS, {39.93, 32.86}, 5700000},
    {"Izmir", "TR", AS, {38.42, 27.14}, 3000000},
    {"Tel Aviv", "IL", AS, {32.08, 34.78}, 4200000},
    {"Jerusalem", "IL", AS, {31.77, 35.21}, 1300000},
    {"Amman", "JO", AS, {31.95, 35.93}, 2200000},
    {"Beirut", "LB", AS, {33.89, 35.50}, 2400000},
    {"Damascus", "SY", AS, {33.51, 36.29}, 2500000},
    {"Baghdad", "IQ", AS, {33.31, 44.37}, 7500000},
    {"Riyadh", "SA", AS, {24.71, 46.68}, 7700000},
    {"Jeddah", "SA", AS, {21.49, 39.19}, 4700000},
    {"Dubai", "AE", AS, {25.20, 55.27}, 3500000},
    {"Abu Dhabi", "AE", AS, {24.45, 54.38}, 1500000},
    {"Doha", "QA", AS, {25.29, 51.53}, 2400000},
    {"Kuwait City", "KW", AS, {29.38, 47.99}, 3100000},
    {"Manama", "BH", AS, {26.23, 50.59}, 700000},
    {"Muscat", "OM", AS, {23.59, 58.41}, 1600000},
    {"Tehran", "IR", AS, {35.69, 51.39}, 9500000},

    // --- Africa ---
    {"Cairo", "EG", AF, {30.04, 31.24}, 21300000},
    {"Alexandria", "EG", AF, {31.20, 29.92}, 5400000},
    {"Lagos", "NG", AF, {6.52, 3.38}, 15400000},
    {"Abuja", "NG", AF, {9.06, 7.50}, 3600000},
    {"Kano", "NG", AF, {12.00, 8.52}, 4100000},
    {"Accra", "GH", AF, {5.60, -0.19}, 2600000},
    {"Abidjan", "CI", AF, {5.36, -4.01}, 5300000},
    {"Dakar", "SN", AF, {14.72, -17.47}, 3100000},
    {"Casablanca", "MA", AF, {33.57, -7.59}, 3800000},
    {"Rabat", "MA", AF, {34.02, -6.84}, 1900000},
    {"Algiers", "DZ", AF, {36.75, 3.06}, 2800000},
    {"Tunis", "TN", AF, {36.81, 10.18}, 2400000},
    {"Tripoli", "LY", AF, {32.89, 13.19}, 1200000},
    {"Khartoum", "SD", AF, {15.50, 32.56}, 5800000},
    {"Addis Ababa", "ET", AF, {9.01, 38.75}, 5000000},
    {"Nairobi", "KE", AF, {-1.29, 36.82}, 4700000},
    {"Mombasa", "KE", AF, {-4.04, 39.67}, 1300000},
    {"Kampala", "UG", AF, {0.35, 32.58}, 3500000},
    {"Dar es Salaam", "TZ", AF, {-6.79, 39.21}, 6700000},
    {"Kinshasa", "CD", AF, {-4.44, 15.27}, 14300000},
    {"Luanda", "AO", AF, {-8.84, 13.23}, 8300000},
    {"Johannesburg", "ZA", AF, {-26.20, 28.05}, 9600000},
    {"Cape Town", "ZA", AF, {-33.92, 18.42}, 4600000},
    {"Durban", "ZA", AF, {-29.86, 31.02}, 3100000},
    {"Pretoria", "ZA", AF, {-25.75, 28.19}, 2500000},
    {"Harare", "ZW", AF, {-17.83, 31.05}, 1500000},
    {"Lusaka", "ZM", AF, {-15.39, 28.32}, 2900000},
    {"Maputo", "MZ", AF, {-25.97, 32.58}, 1100000},
    {"Antananarivo", "MG", AF, {-18.88, 47.51}, 3600000},
    {"Douala", "CM", AF, {4.05, 9.77}, 3800000},

    // --- Asia ---
    {"Tokyo", "JP", AS, {35.68, 139.69}, 37400000},
    {"Osaka", "JP", AS, {34.69, 135.50}, 19200000},
    {"Nagoya", "JP", AS, {35.18, 136.91}, 9500000},
    {"Fukuoka", "JP", AS, {33.59, 130.40}, 2600000},
    {"Sapporo", "JP", AS, {43.06, 141.35}, 2700000},
    {"Seoul", "KR", AS, {37.57, 126.98}, 25500000},
    {"Busan", "KR", AS, {35.18, 129.08}, 3400000},
    {"Incheon", "KR", AS, {37.46, 126.71}, 3000000},
    {"Beijing", "CN", AS, {39.90, 116.41}, 21500000},
    {"Shanghai", "CN", AS, {31.23, 121.47}, 27100000},
    {"Guangzhou", "CN", AS, {23.13, 113.26}, 18700000},
    {"Shenzhen", "CN", AS, {22.54, 114.06}, 17600000},
    {"Chengdu", "CN", AS, {30.57, 104.07}, 16600000},
    {"Chongqing", "CN", AS, {29.56, 106.55}, 16400000},
    {"Wuhan", "CN", AS, {30.59, 114.31}, 11100000},
    {"Xian", "CN", AS, {34.34, 108.94}, 12900000},
    {"Tianjin", "CN", AS, {39.34, 117.36}, 13600000},
    {"Nanjing", "CN", AS, {32.06, 118.80}, 9300000},
    {"Hangzhou", "CN", AS, {30.27, 120.16}, 10400000},
    {"Hong Kong", "HK", AS, {22.32, 114.17}, 7500000},
    {"Macau", "MO", AS, {22.20, 113.55}, 680000},
    {"Taipei", "TW", AS, {25.03, 121.57}, 7000000},
    {"Kaohsiung", "TW", AS, {22.62, 120.31}, 2800000},
    {"Ulaanbaatar", "MN", AS, {47.89, 106.91}, 1600000},
    {"Hanoi", "VN", AS, {21.03, 105.85}, 8100000},
    {"Ho Chi Minh City", "VN", AS, {10.82, 106.63}, 9000000},
    {"Da Nang", "VN", AS, {16.05, 108.22}, 1200000},
    {"Phnom Penh", "KH", AS, {11.56, 104.92}, 2300000},
    {"Vientiane", "LA", AS, {17.98, 102.63}, 1000000},
    {"Bangkok", "TH", AS, {13.76, 100.50}, 10700000},
    {"Chiang Mai", "TH", AS, {18.79, 98.98}, 1200000},
    {"Yangon", "MM", AS, {16.87, 96.20}, 5400000},
    {"Kuala Lumpur", "MY", AS, {3.14, 101.69}, 8300000},
    {"Penang", "MY", AS, {5.42, 100.33}, 2800000},
    {"Singapore", "SG", AS, {1.35, 103.82}, 5900000},
    {"Jakarta", "ID", AS, {-6.21, 106.85}, 10600000},
    {"Surabaya", "ID", AS, {-7.25, 112.75}, 3000000},
    {"Bandung", "ID", AS, {-6.92, 107.61}, 2600000},
    {"Medan", "ID", AS, {3.59, 98.67}, 2400000},
    {"Manila", "PH", AS, {14.60, 120.98}, 13900000},
    {"Cebu", "PH", AS, {10.32, 123.89}, 3000000},
    {"Davao", "PH", AS, {7.19, 125.46}, 1800000},
    {"Delhi", "IN", AS, {28.61, 77.21}, 31200000},
    {"Mumbai", "IN", AS, {19.08, 72.88}, 20700000},
    {"Bangalore", "IN", AS, {12.97, 77.59}, 12800000},
    {"Chennai", "IN", AS, {13.08, 80.27}, 11200000},
    {"Kolkata", "IN", AS, {22.57, 88.36}, 14900000},
    {"Hyderabad", "IN", AS, {17.39, 78.49}, 10300000},
    {"Pune", "IN", AS, {18.52, 73.86}, 6800000},
    {"Ahmedabad", "IN", AS, {23.02, 72.57}, 8300000},
    {"Jaipur", "IN", AS, {26.91, 75.79}, 4100000},
    {"Lucknow", "IN", AS, {26.85, 80.95}, 3700000},
    {"Surat", "IN", AS, {21.17, 72.83}, 7500000},
    {"Kanpur", "IN", AS, {26.45, 80.33}, 3100000},
    {"Colombo", "LK", AS, {6.93, 79.85}, 2300000},
    {"Dhaka", "BD", AS, {23.81, 90.41}, 22500000},
    {"Chittagong", "BD", AS, {22.36, 91.78}, 5300000},
    {"Kathmandu", "NP", AS, {27.72, 85.32}, 1500000},
    {"Karachi", "PK", AS, {24.86, 67.01}, 16800000},
    {"Lahore", "PK", AS, {31.55, 74.34}, 13100000},
    {"Islamabad", "PK", AS, {33.68, 73.05}, 1200000},
    {"Kabul", "AF", AS, {34.56, 69.21}, 4600000},
    {"Tashkent", "UZ", AS, {41.30, 69.24}, 2600000},
    {"Almaty", "KZ", AS, {43.24, 76.89}, 2000000},
    {"Astana", "KZ", AS, {51.17, 71.43}, 1200000},
    {"Bishkek", "KG", AS, {42.87, 74.59}, 1100000},
    {"Dushanbe", "TJ", AS, {38.54, 68.78}, 900000},
    {"Baku", "AZ", AS, {40.41, 49.87}, 2400000},
    {"Tbilisi", "GE", AS, {41.72, 44.78}, 1200000},
    {"Yerevan", "AM", AS, {40.18, 44.51}, 1100000},

    // --- Oceania ---
    {"Sydney", "AU", OC, {-33.87, 151.21}, 5300000},
    {"Melbourne", "AU", OC, {-37.81, 144.96}, 5100000},
    {"Brisbane", "AU", OC, {-27.47, 153.03}, 2600000},
    {"Perth", "AU", OC, {-31.95, 115.86}, 2100000},
    {"Adelaide", "AU", OC, {-34.93, 138.60}, 1400000},
    {"Canberra", "AU", OC, {-35.28, 149.13}, 460000},
    {"Auckland", "NZ", OC, {-36.85, 174.76}, 1700000},
    {"Wellington", "NZ", OC, {-41.29, 174.78}, 420000},
    {"Christchurch", "NZ", OC, {-43.53, 172.64}, 400000},
    {"Suva", "FJ", OC, {-18.14, 178.44}, 180000},
    {"Port Moresby", "PG", OC, {-9.44, 147.18}, 400000},
};

}  // namespace

std::string_view to_string(Continent c) {
  switch (c) {
    case Continent::kNorthAmerica:
      return "NA";
    case Continent::kSouthAmerica:
      return "SA";
    case Continent::kEurope:
      return "EU";
    case Continent::kAfrica:
      return "AF";
    case Continent::kAsia:
      return "AS";
    case Continent::kOceania:
      return "OC";
  }
  return "??";
}

std::span<const City> world_cities() { return kCities; }

std::optional<CityId> find_city(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kCities); ++i) {
    if (kCities[i].name == name) return static_cast<CityId>(i);
  }
  return std::nullopt;
}

const City& city(CityId id) {
  expects(id < std::size(kCities), "valid city id");
  return kCities[id];
}

std::vector<CityId> cities_within(const Disc& disc) {
  std::vector<CityId> out;
  for (std::size_t i = 0; i < std::size(kCities); ++i) {
    if (disc.contains(kCities[i].location)) {
      out.push_back(static_cast<CityId>(i));
    }
  }
  return out;
}

std::optional<CityId> most_populous_within(const Disc& disc) {
  std::optional<CityId> best;
  std::uint32_t best_pop = 0;
  for (std::size_t i = 0; i < std::size(kCities); ++i) {
    if (kCities[i].population > best_pop &&
        disc.contains(kCities[i].location)) {
      best = static_cast<CityId>(i);
      best_pop = kCities[i].population;
    }
  }
  return best;
}

CityId nearest_city(const GeoPoint& p) {
  CityId best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < std::size(kCities); ++i) {
    const double d = distance_km(kCities[i].location, p);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<CityId>(i);
    }
  }
  return best;
}

}  // namespace laces::geo
