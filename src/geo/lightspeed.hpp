// Speed-of-light-in-fibre conversions between RTT and distance.
//
// iGreedy's core assumption (paper §2.1): packets travel at most at the
// speed of light in fibre, ~200,000 km/s. An observed RTT therefore bounds
// the great-circle distance between prober and target, and two probes whose
// distance discs cannot both contain one point prove anycast
// ("speed-of-light violation").
#pragma once

namespace laces::geo {

/// Propagation speed assumed by the GCD method: light in fibre, km per ms.
inline constexpr double kFibreKmPerMs = 200.0;

/// Maximum one-way distance (km) a packet can have travelled given an RTT.
/// This is the disc radius iGreedy draws around a vantage point.
constexpr double max_one_way_km(double rtt_ms) {
  return rtt_ms <= 0.0 ? 0.0 : rtt_ms / 2.0 * kFibreKmPerMs;
}

/// Minimum physically possible RTT (ms) for a one-way distance (km).
constexpr double min_rtt_ms(double one_way_km) {
  return one_way_km <= 0.0 ? 0.0 : 2.0 * one_way_km / kFibreKmPerMs;
}

}  // namespace laces::geo
