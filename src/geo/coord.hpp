// Geographic coordinates and great-circle distance (haversine).
#pragma once

#include <compare>

namespace laces::geo {

/// Mean Earth radius used throughout (km).
inline constexpr double kEarthRadiusKm = 6371.0;

/// WGS84-style latitude/longitude in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance between two points in km (haversine formula).
double distance_km(const GeoPoint& a, const GeoPoint& b);

/// Initial great-circle bearing from `a` to `b`, degrees in [0, 360).
double bearing_deg(const GeoPoint& a, const GeoPoint& b);

/// Destination point `dist_km` from `origin` along `bearing` degrees.
GeoPoint destination(const GeoPoint& origin, double bearing, double dist_km);

}  // namespace laces::geo
