// Great-circle discs: the geometric primitive of the GCD method.
#pragma once

#include "geo/coord.hpp"

namespace laces::geo {

/// A spherical cap: all points within `radius_km` (great-circle) of `center`.
struct Disc {
  GeoPoint center;
  double radius_km = 0.0;

  /// True if `p` lies inside or on the disc boundary.
  bool contains(const GeoPoint& p) const {
    return distance_km(center, p) <= radius_km;
  }
};

/// True if the two discs share at least one point.
inline bool overlaps(const Disc& a, const Disc& b) {
  return distance_km(a.center, b.center) <= a.radius_km + b.radius_km;
}

/// True if the discs are disjoint: a speed-of-light violation when both are
/// latency discs for the same address (the target cannot be in two disjoint
/// regions at once unless it is anycast).
inline bool disjoint(const Disc& a, const Disc& b) { return !overlaps(a, b); }

}  // namespace laces::geo
