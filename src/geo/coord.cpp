#include "geo/coord.hpp"

#include <cmath>
#include <numbers>

namespace laces::geo {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;

}  // namespace

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double bearing_deg(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double deg = std::atan2(y, x) * kRadToDeg;
  if (deg < 0) deg += 360.0;
  return deg;
}

GeoPoint destination(const GeoPoint& origin, double bearing, double dist_km) {
  const double ang = dist_km / kEarthRadiusKm;
  const double lat1 = origin.lat_deg * kDegToRad;
  const double lon1 = origin.lon_deg * kDegToRad;
  const double brg = bearing * kDegToRad;
  const double lat2 = std::asin(std::sin(lat1) * std::cos(ang) +
                                std::cos(lat1) * std::sin(ang) * std::cos(brg));
  const double lon2 =
      lon1 + std::atan2(std::sin(brg) * std::sin(ang) * std::cos(lat1),
                        std::cos(ang) - std::sin(lat1) * std::sin(lat2));
  double lon_deg = lon2 * kRadToDeg;
  while (lon_deg > 180.0) lon_deg -= 360.0;
  while (lon_deg < -180.0) lon_deg += 360.0;
  return GeoPoint{lat2 * kRadToDeg, lon_deg};
}

}  // namespace laces::geo
