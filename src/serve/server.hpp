// Concurrent census query server over an immutable archive.
//
// The first genuinely multi-threaded subsystem in the repo: a fixed pool
// of std::thread workers drains a bounded MPMC request queue fed by any
// number of client threads. Admission control happens on the *client's*
// thread before a job is queued — a full queue or a connection over its
// in-flight cap gets an immediate, signed kOverloaded response carrying a
// retry-after hint instead of unbounded queueing (load shedding, never a
// hang). Cache hits are also answered on the client thread: the sharded
// response LRU (serve/cache.hpp) is keyed by canonical request bytes and
// holds encoded response bodies, layered above the (shared-lock) decoded
// segment cache inside store::ArchiveReader. Shutdown is a graceful
// drain: accepted jobs finish, new submissions are refused with
// kShuttingDown.
//
// Everything is in-process: a Connection is the transport. Frames in and
// out are the real wire bytes (serve/protocol.hpp) — authenticated,
// length-framed, versioned — so moving a connection onto a socket is a
// transport swap, not a protocol change.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/loghist.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "store/archive.hpp"
#include "store/query.hpp"

namespace laces::serve {

struct ServerConfig {
  /// Worker pool size.
  std::size_t threads = 4;
  /// Bounded request queue: submissions beyond this are shed.
  std::size_t queue_capacity = 256;
  /// Per-connection in-flight cap (queued + executing jobs).
  std::size_t max_inflight_per_connection = 64;
  /// Response cache geometry.
  std::size_t cache_shards = 8;
  std::size_t cache_entries_per_shard = 256;
  /// Negative-result arena per shard (cached typed misses such as
  /// unknown-day errors). 0 disables negative caching.
  std::size_t negative_entries_per_shard = 64;
  /// Shared HMAC key; clients must present the same key (core::frame_mac).
  std::string key = "laces-serve";
  /// Backoff hint attached to kOverloaded shed responses.
  std::uint32_t retry_after_ms = 50;
  /// When false the pool does not start until start() — tests use this to
  /// fill the queue deterministically and prove shedding without races.
  bool start_workers = true;
};

class Server;

/// One client's handle onto the server. Thread-compatible: a connection
/// may be driven from several threads, each counted against the same
/// in-flight cap. Connections must not outlive their Server.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Submits one request frame. Always yields a response frame — possibly
  /// a typed error (shed, bad request) — never blocks on a full queue.
  std::future<std::vector<std::uint8_t>> submit(
      std::vector<std::uint8_t> frame);

  /// Synchronous convenience: submit and wait.
  std::vector<std::uint8_t> call(std::vector<std::uint8_t> frame) {
    return submit(std::move(frame)).get();
  }

  std::uint64_t id() const { return id_; }
  std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  friend class Server;
  Connection(Server* server, std::uint64_t id) : server_(server), id_(id) {}

  Server* server_;
  std::uint64_t id_;
  std::atomic<std::size_t> inflight_{0};
};

class Server {
 public:
  Server(store::ArchiveReader& reader, ServerConfig config);
  /// Drains outstanding work and joins the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a new in-process connection.
  std::shared_ptr<Connection> connect();

  /// Starts the worker pool (no-op if already running).
  void start();

  /// Graceful shutdown: refuse new submissions, finish every queued job,
  /// join the workers. Idempotent.
  void drain();

  const ServerConfig& config() const { return config_; }
  const ResponseCache& cache() const { return cache_; }
  /// Mutable handle for the owning relay (day-roll invalidation).
  ResponseCache& cache_mut() { return cache_; }

  /// Lets a co-located mesh relay answer in-band MeshStatsRequest frames
  /// with its live peer/subscription state. Unset, the server answers with
  /// an empty snapshot (a plain archive server has no peers). Set before
  /// serving traffic; the provider must be thread-safe.
  void set_mesh_stats_provider(std::function<MeshStatsResponse()> provider) {
    mesh_stats_provider_ = std::move(provider);
  }

  /// Requests answered by a worker (cache misses that executed).
  std::uint64_t requests_executed() const {
    return requests_executed_.load(std::memory_order_relaxed);
  }
  /// Requests answered from the response cache on the client thread.
  std::uint64_t cache_hits() const { return cache_.hits(); }
  /// Submissions refused by admission control (queue full or cap hit).
  std::uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }
  /// Frames that failed MAC or structural validation.
  std::uint64_t auth_failures() const {
    return auth_failures_.load(std::memory_order_relaxed);
  }
  std::size_t queue_depth() const;

  /// The admin-endpoint snapshot (also answerable in-band via a signed
  /// StatsRequest frame; see protocol.hpp).
  ServeStats stats() const;

  /// Per-stage latency percentiles: queue_wait / archive_read / render /
  /// total, in microseconds, from the server's LogHistograms. `total` is
  /// the submit-to-response time of worker-executed requests (cache hits
  /// and shed requests are excluded so the stages decompose consistently).
  std::vector<StageLatency> latency_stages() const;

 private:
  struct Job {
    std::shared_ptr<Connection> connection;
    std::uint64_t request_id = 0;
    std::vector<std::uint8_t> canonical;  // cache key
    Request request;
    std::promise<std::vector<std::uint8_t>> promise;
    std::chrono::steady_clock::time_point submitted;  // queue-wait stamp
  };

  friend class Connection;
  std::future<std::vector<std::uint8_t>> submit(
      std::shared_ptr<Connection> connection, std::vector<std::uint8_t> frame);

  std::vector<std::uint8_t> respond(std::uint64_t request_id,
                                    std::span<const std::uint8_t> body) const;
  std::vector<std::uint8_t> error_frame(std::uint64_t request_id,
                                        ErrorCode code, std::string message,
                                        std::uint32_t retry_after_ms = 0) const;

  void worker_loop();
  /// Executes one decoded request against the archive (worker thread).
  Response execute(const Request& request);
  /// Answers an introspection request (stats/latency/trace/flightrec).
  /// Runs inline on the submitting thread — see the admin section of
  /// protocol.hpp for why these bypass the worker pool.
  Response admin_response(const Request& request) const;

  store::ArchiveReader& reader_;
  ServerConfig config_;
  ResponseCache cache_;
  std::function<MeshStatsResponse()> mesh_stats_provider_;

  /// Stability/intermittent queries share one QueryEngine so the expensive
  /// longitudinal replay happens once; the engine's lazy replay state is
  /// the only mutable part, hence the mutex.
  store::QueryEngine engine_;
  std::mutex engine_mutex_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;

  std::vector<std::thread> workers_;
  std::mutex lifecycle_mutex_;  // start()/drain() serialization
  bool started_ = false;

  std::atomic<std::uint64_t> next_connection_id_{1};
  std::atomic<std::uint64_t> requests_executed_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> auth_failures_{0};

  obs::Counter* executed_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* auth_failure_counter_ = nullptr;
  obs::Counter* error_counter_ = nullptr;
  obs::Histogram* latency_us_ = nullptr;

  /// Per-stage request-path latency (microseconds). queue_wait is
  /// submit -> worker dequeue, archive_read is execute(), render is
  /// encode + cache insert, total is submit -> response. drain()
  /// publishes their p999s as gauges so run reports can apply health
  /// rules after the server is gone.
  obs::LogHistogram queue_wait_us_;
  obs::LogHistogram archive_read_us_;
  obs::LogHistogram render_us_;
  obs::LogHistogram total_us_;
};

}  // namespace laces::serve
