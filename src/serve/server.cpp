#include "serve/server.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/flightrec.hpp"
#include "obs/trace.hpp"

namespace laces::serve {
namespace {

double micros_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wire tag of a request (RequestTag in protocol.cpp is variant order + 1)
/// — the flight recorder's per-event request-class code.
std::uint16_t request_tag(const Request& request) {
  return static_cast<std::uint16_t>(request.index() + 1);
}

StageLatency stage_of(const char* name, const obs::LogHistogram& h) {
  StageLatency s;
  s.stage = name;
  s.count = h.count();
  s.p50_us = h.p50();
  s.p99_us = h.p99();
  s.p999_us = h.p999();
  s.max_us = h.max();
  return s;
}

}  // namespace

std::future<std::vector<std::uint8_t>> Connection::submit(
    std::vector<std::uint8_t> frame) {
  // The server keeps a shared_ptr so the connection (and its in-flight
  // counter) stays alive while the job sits in the queue.
  return server_->submit(shared_from_this(), std::move(frame));
}

Server::Server(store::ArchiveReader& reader, ServerConfig config)
    : reader_(reader),
      config_(std::move(config)),
      cache_(config_.cache_shards, config_.cache_entries_per_shard,
             config_.negative_entries_per_shard),
      engine_(reader) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_inflight_per_connection == 0) {
    config_.max_inflight_per_connection = 1;
  }
  auto& reg = obs::Registry::global();
  executed_counter_ = &reg.counter("laces_serve_requests_executed_total");
  shed_counter_ = &reg.counter("laces_serve_requests_shed_total");
  auth_failure_counter_ = &reg.counter("laces_serve_auth_failures_total");
  error_counter_ = &reg.counter("laces_serve_error_responses_total");
  latency_us_ = &reg.histogram("laces_serve_request_micros",
                               obs::log_buckets(10.0, 1e6, 4));
  if (config_.start_workers) start();
}

Server::~Server() { drain(); }

std::shared_ptr<Connection> Server::connect() {
  const std::uint64_t id =
      next_connection_id_.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<Connection>(new Connection(this, id));
}

void Server::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (started_) return;
  started_ = true;
  workers_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServeStats Server::stats() const {
  ServeStats s;
  s.requests_executed = requests_executed_.load(std::memory_order_relaxed);
  s.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  s.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  s.response_cache_hits = cache_.hits();
  s.response_cache_misses = cache_.misses();
  s.response_cache_evictions = cache_.evictions();
  s.response_cache_entries = cache_.size();
  s.negative_cache_hits = cache_.negative_hits();
  s.negative_cache_entries = cache_.negative_size();
  s.segment_cache_hits = reader_.cache_hits();
  s.segment_cache_misses = reader_.cache_misses();
  const auto& frec = obs::FlightRecorder::global();
  s.flightrec_recorded = frec.recorded();
  s.flightrec_overwritten = frec.overwritten();
  s.workers = static_cast<std::uint32_t>(config_.threads);
  s.queue_capacity = static_cast<std::uint32_t>(config_.queue_capacity);
  s.active_spans =
      static_cast<std::uint32_t>(obs::Tracer::global().active_count());
  {
    std::lock_guard lock(queue_mutex_);
    s.queue_depth = static_cast<std::uint32_t>(queue_.size());
    s.draining = draining_;
  }
  return s;
}

std::vector<StageLatency> Server::latency_stages() const {
  return {stage_of("queue_wait", queue_wait_us_),
          stage_of("archive_read", archive_read_us_),
          stage_of("render", render_us_), stage_of("total", total_us_)};
}

Response Server::admin_response(const Request& request) const {
  if (std::holds_alternative<StatsRequest>(request)) {
    return StatsResponse{stats()};
  }
  if (std::holds_alternative<MeshStatsRequest>(request)) {
    // A plain archive server has no mesh: the empty snapshot is the honest
    // answer, and a relay-backed server delegates to its relay.
    return mesh_stats_provider_ ? mesh_stats_provider_() : MeshStatsResponse{};
  }
  if (std::holds_alternative<LatencyRequest>(request)) {
    return LatencyResponse{latency_stages()};
  }
  if (const auto* req = std::get_if<TraceTailRequest>(&request)) {
    auto& tracer = obs::Tracer::global();
    TraceTailResponse resp;
    resp.dropped = tracer.dropped();
    auto records = tracer.snapshot();
    const std::size_t keep =
        req->max == 0 ? records.size()
                      : std::min<std::size_t>(req->max, records.size());
    resp.spans.reserve(keep);
    for (std::size_t i = records.size() - keep; i < records.size(); ++i) {
      const auto& rec = records[i];
      resp.spans.push_back(
          {rec.id, rec.parent, rec.name, rec.start_ns, rec.end_ns});
    }
    return resp;
  }
  const auto* req = std::get_if<FlightRecTailRequest>(&request);
  FlightRecTailResponse resp;
  const auto tail =
      obs::FlightRecorder::global().merged_tail(req ? req->max : 0);
  resp.events.reserve(tail.size());
  for (const auto& e : tail) {
    FlightEvent out;
    out.wall_ns = e.record.wall_ns;
    out.sim_ns = e.record.sim_ns;
    out.a = e.record.a;
    out.seq = e.seq;
    out.b = e.record.b;
    out.ring = e.ring;
    out.code = e.record.code;
    out.kind = e.record.kind;
    resp.events.push_back(out);
  }
  return resp;
}

void Server::drain() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  {
    std::lock_guard lock(queue_mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  queue_cv_.notify_all();
  if (!started_) {
    // Pool never ran: fail queued jobs rather than leaving futures hanging.
    std::deque<Job> orphaned;
    {
      std::lock_guard lock(queue_mutex_);
      orphaned.swap(queue_);
    }
    for (auto& job : orphaned) {
      job.connection->inflight_.fetch_sub(1, std::memory_order_relaxed);
      job.promise.set_value(error_frame(job.request_id,
                                        ErrorCode::kShuttingDown,
                                        "server drained before start"));
    }
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  // Publish final tail latencies as gauges so run reports (and their
  // health rules) can see them after the server object is gone.
  auto& reg = obs::Registry::global();
  reg.gauge("laces_serve_total_p50_us").set(total_us_.p50());
  reg.gauge("laces_serve_total_p99_us").set(total_us_.p99());
  reg.gauge("laces_serve_total_p999_us").set(total_us_.p999());
  reg.gauge("laces_serve_queue_wait_p999_us").set(queue_wait_us_.p999());
  reg.gauge("laces_serve_archive_read_p999_us").set(archive_read_us_.p999());
  reg.gauge("laces_serve_render_p999_us").set(render_us_.p999());
}

std::size_t Server::queue_depth() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

std::vector<std::uint8_t> Server::respond(
    std::uint64_t request_id, std::span<const std::uint8_t> body) const {
  return encode_frame(config_.key, FrameKind::kResponse, request_id, body);
}

std::vector<std::uint8_t> Server::error_frame(
    std::uint64_t request_id, ErrorCode code, std::string message,
    std::uint32_t retry_after_ms) const {
  ErrorResponse error;
  error.code = code;
  error.message = std::move(message);
  error.retry_after_ms = retry_after_ms;
  error_counter_->add(1);
  return respond(request_id, encode_response(Response(std::move(error))));
}

std::future<std::vector<std::uint8_t>> Server::submit(
    std::shared_ptr<Connection> connection, std::vector<std::uint8_t> frame) {
  std::promise<std::vector<std::uint8_t>> promise;
  auto future = promise.get_future();

  // Authenticate and parse on the client thread: a forged or garbled frame
  // must never consume a queue slot or a worker.
  Frame parsed;
  try {
    parsed = decode_frame(config_.key, frame);
    if (parsed.kind != FrameKind::kRequest) {
      throw ProtocolError("frame: expected a request frame");
    }
  } catch (const ProtocolError& e) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    auth_failure_counter_->add(1);
    promise.set_value(error_frame(0, ErrorCode::kBadRequest, e.what()));
    return future;
  }

  Request request;
  try {
    request = decode_request(parsed.payload);
  } catch (const ProtocolError& e) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    auth_failure_counter_->add(1);
    obs::FlightRecorder::global().record(obs::FrEvent::kAuthFailure);
    promise.set_value(
        error_frame(parsed.request_id, ErrorCode::kBadRequest, e.what()));
    return future;
  }

  // Introspection requests are answered inline on the submitting thread,
  // before cache, admission and drain checks: they never occupy a worker
  // or a queue slot, are never cached (the answer is the current moment),
  // and stay answerable while the server drains — an overloaded or
  // shutting-down server can still be asked what is wrong with it.
  if (is_admin_request(request)) {
    promise.set_value(respond(
        parsed.request_id, encode_response(admin_response(request))));
    return future;
  }

  // Canonicalize: the cache key is our encoding of the request, not the
  // client's bytes, so equivalent requests share one entry.
  std::vector<std::uint8_t> canonical = encode_request(request);

  // Cache hits are answered right here on the client thread.
  if (auto body = cache_.lookup(canonical)) {
    obs::FlightRecorder::global().record(obs::FrEvent::kCacheHit,
                                         request_tag(request));
    promise.set_value(respond(parsed.request_id, *body));
    return future;
  }
  obs::FlightRecorder::global().record(obs::FrEvent::kCacheMiss,
                                       request_tag(request));

  // Admission control. Per-connection cap first (cheap, no lock), then the
  // bounded queue. Both failures shed with a retry-after hint.
  const std::size_t inflight =
      connection->inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (inflight > config_.max_inflight_per_connection) {
    connection->inflight_.fetch_sub(1, std::memory_order_relaxed);
    requests_shed_.fetch_add(1, std::memory_order_relaxed);
    shed_counter_->add(1);
    obs::FlightRecorder::global().record(obs::FrEvent::kRequestShed, 1,
                                         parsed.request_id);
    promise.set_value(error_frame(
        parsed.request_id, ErrorCode::kOverloaded,
        "connection in-flight cap reached", config_.retry_after_ms));
    return future;
  }

  Job job;
  job.connection = std::move(connection);
  job.request_id = parsed.request_id;
  job.canonical = std::move(canonical);
  job.request = std::move(request);
  job.promise = std::move(promise);
  job.submitted = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(queue_mutex_);
    if (draining_) {
      job.connection->inflight_.fetch_sub(1, std::memory_order_relaxed);
      job.promise.set_value(error_frame(job.request_id,
                                        ErrorCode::kShuttingDown,
                                        "server is draining"));
      return future;
    }
    if (queue_.size() >= config_.queue_capacity) {
      job.connection->inflight_.fetch_sub(1, std::memory_order_relaxed);
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      shed_counter_->add(1);
      obs::FlightRecorder::global().record(obs::FrEvent::kRequestShed, 2,
                                           job.request_id);
      job.promise.set_value(error_frame(job.request_id, ErrorCode::kOverloaded,
                                        "request queue full",
                                        config_.retry_after_ms));
      return future;
    }
    obs::FlightRecorder::global().record(
        obs::FrEvent::kRequestBegin, request_tag(job.request), job.request_id);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return future;
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    const auto t0 = std::chrono::steady_clock::now();
    queue_wait_us_.observe(
        std::chrono::duration<double, std::micro>(t0 - job.submitted).count());
    Response response = execute(job.request);
    const auto t1 = std::chrono::steady_clock::now();
    archive_read_us_.observe(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    std::vector<std::uint8_t> body = encode_response(response);

    // Only successful responses are cached positively; errors stay out so
    // a healed archive (or a drained overload) is retried at full
    // fidelity. The one exception is kUnknownDay: the day's absence is a
    // durable fact of the (immutable) manifest, so its error body goes to
    // the bounded negative arena — repeated absent-day lookups stop
    // re-walking the archive. The arena is invalidated wholesale when an
    // append changes what exists (mesh relays do this on day commit).
    if (!std::holds_alternative<ErrorResponse>(response)) {
      cache_.insert(job.canonical,
                    std::make_shared<const std::vector<std::uint8_t>>(body));
    } else if (std::get<ErrorResponse>(response).code ==
               ErrorCode::kUnknownDay) {
      cache_.insert_negative(
          job.canonical,
          std::make_shared<const std::vector<std::uint8_t>>(body));
    }
    render_us_.observe(micros_since(t1));
    requests_executed_.fetch_add(1, std::memory_order_relaxed);
    executed_counter_->add(1);
    latency_us_->observe(micros_since(t0));
    const double total_us = micros_since(job.submitted);
    total_us_.observe(total_us);
    std::uint16_t end_code = 0;
    if (const auto* error = std::get_if<ErrorResponse>(&response)) {
      end_code = static_cast<std::uint16_t>(error->code);
    }
    obs::FlightRecorder::global().record(
        obs::FrEvent::kRequestEnd, end_code, job.request_id,
        static_cast<std::uint32_t>(total_us));

    job.connection->inflight_.fetch_sub(1, std::memory_order_relaxed);
    job.promise.set_value(respond(job.request_id, body));
  }
}

Response Server::execute(const Request& request) {
  try {
    return std::visit(
        [this](const auto& req) -> Response {
          using T = std::decay_t<decltype(req)>;
          if constexpr (std::is_same_v<T, SummaryRequest>) {
            // Manifest-only: no segment reads, no engine state.
            return SummaryResponse{store::QueryEngine(reader_).summary()};
          } else if constexpr (std::is_same_v<T, StabilityRequest>) {
            std::lock_guard lock(engine_mutex_);
            return StabilityResponse{engine_.stability()};
          } else if constexpr (std::is_same_v<T, HistoryRequest>) {
            // History walks the (thread-safe) segment cache; the engine
            // wrapper itself is stateless for this query.
            HistoryResponse resp;
            resp.prefix = req.prefix;
            resp.days = store::QueryEngine(reader_).history(req.prefix);
            return resp;
          } else if constexpr (std::is_same_v<T, IntermittentRequest>) {
            std::lock_guard lock(engine_mutex_);
            IntermittentResponse resp;
            resp.anycast_based = engine_.intermittent_anycast_based();
            resp.gcd = engine_.intermittent_gcd();
            return resp;
          } else if constexpr (std::is_same_v<T, ExportDayRequest>) {
            if (reader_.manifest().find(req.day) == nullptr) {
              ErrorResponse error;
              error.code = ErrorCode::kUnknownDay;
              error.message =
                  "day " + std::to_string(req.day) + " is not in the archive";
              return error;
            }
            ExportDayResponse resp;
            resp.day = req.day;
            std::ostringstream csv;
            reader_.export_csv(req.day, csv);
            resp.csv = csv.str();
            return resp;
          } else {
            // Admin requests are intercepted in submit() and never reach a
            // worker; answering here too keeps execute() total over the
            // Request variant.
            return admin_response(Request(req));
          }
        },
        request);
  } catch (const store::ArchiveError& e) {
    // The same condition `laces query` reports as a line-anchored error
    // (e.g. a segment failing its SHA-256 footer check) becomes a typed
    // response here — corruption is surfaced, never silently served.
    ErrorResponse error;
    error.code = ErrorCode::kCorruptArchive;
    error.message = e.what();
    return error;
  }
}

}  // namespace laces::serve
