#include "serve/json.hpp"

#include <cstdio>

#include "obs/flightrec.hpp"

namespace laces::serve {
namespace {

/// Deterministic double rendering: shortest round-trip-ish form via %.12g.
/// Both the offline and served paths format through here, so equality of
/// the underlying doubles implies equality of the JSON bytes.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string prefix_array(const std::vector<net::Prefix>& prefixes) {
  std::string out = "[";
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    if (i) out += ',';
    out += '"' + prefixes[i].to_string() + '"';
  }
  out += ']';
  return out;
}

std::string stats_object(const census::StabilityStats& s) {
  std::string out = "{";
  out += "\"days\":" + std::to_string(s.days);
  out += ",\"degraded_days\":" + std::to_string(s.degraded_days);
  out += ",\"union\":" + std::to_string(s.union_size);
  out += ",\"every_day\":" + std::to_string(s.every_day);
  out += ",\"intermittent\":" + std::to_string(s.intermittent());
  out += ",\"daily_mean\":" + num(s.daily_mean);
  out += '}';
  return out;
}

}  // namespace

std::string json_summary(const store::ArchiveSummary& s) {
  std::string out = "{\"summary\":{";
  out += "\"days\":" + std::to_string(s.days);
  out += ",\"degraded_days\":" + std::to_string(s.degraded_days);
  out += ",\"first_day\":" + std::to_string(s.first_day);
  out += ",\"last_day\":" + std::to_string(s.last_day);
  out += ",\"records_total\":" + std::to_string(s.records_total);
  out += ",\"segment_bytes\":" + std::to_string(s.segment_bytes);
  out += ",\"csv_bytes\":" + std::to_string(s.csv_bytes);
  out += ",\"compression_ratio\":" + num(s.compression_ratio);
  out += ",\"anycast_daily_mean\":" + num(s.anycast_daily_mean);
  out += ",\"gcd_daily_mean\":" + num(s.gcd_daily_mean);
  out += "}}\n";
  return out;
}

std::string json_stability(const store::StabilityReport& report) {
  std::string out = "{\"stability\":{";
  out += "\"from_checkpoint\":";
  out += report.from_checkpoint ? "true" : "false";
  out += ",\"anycast_based\":" + stats_object(report.anycast_based);
  out += ",\"gcd\":" + stats_object(report.gcd);
  out += "}}\n";
  return out;
}

std::string json_history(const net::Prefix& prefix,
                         const std::vector<store::HistoryDay>& days) {
  std::string out = "{\"history\":{\"prefix\":\"" + prefix.to_string() +
                    "\",\"days\":[";
  for (std::size_t i = 0; i < days.size(); ++i) {
    const auto& h = days[i];
    if (i) out += ',';
    out += "{\"day\":" + std::to_string(h.day);
    out += ",\"degraded\":";
    out += h.degraded ? "true" : "false";
    out += ",\"published\":";
    out += h.published ? "true" : "false";
    out += ",\"anycast_based\":";
    out += h.anycast_based ? "true" : "false";
    out += ",\"gcd_confirmed\":";
    out += h.gcd_confirmed ? "true" : "false";
    out += ",\"max_vp_count\":" + std::to_string(h.max_vp_count);
    out += ",\"gcd_sites\":" + std::to_string(h.gcd_sites);
    out += '}';
  }
  out += "]}}\n";
  return out;
}

std::string json_intermittent(const std::vector<net::Prefix>& anycast_based,
                              const std::vector<net::Prefix>& gcd) {
  std::string out = "{\"intermittent\":{";
  out += "\"anycast_based\":" + prefix_array(anycast_based);
  out += ",\"gcd\":" + prefix_array(gcd);
  out += "}}\n";
  return out;
}

std::string json_error(const ErrorResponse& error) {
  std::string out = "{\"error\":{\"code\":\"";
  out += to_string(error.code);
  out += "\",\"message\":\"" + escape(error.message) + "\"";
  out += ",\"retry_after_ms\":" + std::to_string(error.retry_after_ms);
  out += "}}\n";
  return out;
}

std::string json_stats(const ServeStats& s) {
  std::string out = "{\"stats\":{";
  out += "\"requests_executed\":" + std::to_string(s.requests_executed);
  out += ",\"requests_shed\":" + std::to_string(s.requests_shed);
  out += ",\"auth_failures\":" + std::to_string(s.auth_failures);
  out += ",\"response_cache_hits\":" + std::to_string(s.response_cache_hits);
  out += ",\"response_cache_misses\":" +
         std::to_string(s.response_cache_misses);
  out += ",\"response_cache_evictions\":" +
         std::to_string(s.response_cache_evictions);
  out += ",\"response_cache_entries\":" +
         std::to_string(s.response_cache_entries);
  out += ",\"negative_cache_hits\":" + std::to_string(s.negative_cache_hits);
  out += ",\"negative_cache_entries\":" +
         std::to_string(s.negative_cache_entries);
  out += ",\"segment_cache_hits\":" + std::to_string(s.segment_cache_hits);
  out += ",\"segment_cache_misses\":" + std::to_string(s.segment_cache_misses);
  out += ",\"flightrec_recorded\":" + std::to_string(s.flightrec_recorded);
  out += ",\"flightrec_overwritten\":" +
         std::to_string(s.flightrec_overwritten);
  out += ",\"workers\":" + std::to_string(s.workers);
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"queue_capacity\":" + std::to_string(s.queue_capacity);
  out += ",\"active_spans\":" + std::to_string(s.active_spans);
  out += ",\"draining\":";
  out += s.draining ? "true" : "false";
  out += "}}\n";
  return out;
}

std::string json_latency(const std::vector<StageLatency>& stages) {
  std::string out = "{\"latency\":{\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    if (i) out += ',';
    out += "{\"stage\":\"" + escape(s.stage) + "\"";
    out += ",\"count\":" + std::to_string(s.count);
    out += ",\"p50_us\":" + num(s.p50_us);
    out += ",\"p99_us\":" + num(s.p99_us);
    out += ",\"p999_us\":" + num(s.p999_us);
    out += ",\"max_us\":" + num(s.max_us);
    out += '}';
  }
  out += "]}}\n";
  return out;
}

std::string json_trace_tail(const TraceTailResponse& tail) {
  std::string out = "{\"trace\":{\"dropped\":" + std::to_string(tail.dropped) +
                    ",\"spans\":[";
  for (std::size_t i = 0; i < tail.spans.size(); ++i) {
    const auto& s = tail.spans[i];
    if (i) out += ',';
    out += "{\"id\":" + std::to_string(s.id);
    out += ",\"parent\":" + std::to_string(s.parent);
    out += ",\"name\":\"" + escape(s.name) + "\"";
    out += ",\"start_ns\":" + std::to_string(s.start_ns);
    out += ",\"end_ns\":" + std::to_string(s.end_ns);
    out += '}';
  }
  out += "]}}\n";
  return out;
}

std::string json_flightrec_tail(const std::vector<FlightEvent>& events) {
  std::string out = "{\"flightrec\":{\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (i) out += ',';
    out += "{\"wall_ns\":" + std::to_string(e.wall_ns);
    out += ",\"sim_ns\":" + std::to_string(e.sim_ns);
    out += ",\"kind\":\"";
    out += obs::to_string(static_cast<obs::FrEvent>(e.kind));
    out += "\",\"code\":" + std::to_string(e.code);
    out += ",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b);
    out += ",\"ring\":" + std::to_string(e.ring);
    out += ",\"seq\":" + std::to_string(e.seq);
    out += '}';
  }
  out += "]}}\n";
  return out;
}

std::string json_mesh_stats(const MeshStatsResponse& m) {
  std::string out = "{\"mesh\":{";
  out += "\"node_id\":" + std::to_string(m.node_id);
  out += ",\"name\":\"" + escape(m.name) + "\"";
  out += ",\"feed_day\":" + std::to_string(m.feed_day);
  out += ",\"feed_seq\":" + std::to_string(m.feed_seq);
  out += ",\"deltas_published\":" + std::to_string(m.deltas_published);
  out += ",\"deltas_forwarded\":" + std::to_string(m.deltas_forwarded);
  out += ",\"deltas_dropped\":" + std::to_string(m.deltas_dropped);
  out += ",\"duplicate_deltas\":" + std::to_string(m.duplicate_deltas);
  out += ",\"forwards_seen\":" + std::to_string(m.forwards_seen);
  out += ",\"forward_dups_suppressed\":" +
         std::to_string(m.forward_dups_suppressed);
  out += ",\"forwards_answered\":" + std::to_string(m.forwards_answered);
  out += ",\"negative_cache_hits\":" + std::to_string(m.negative_cache_hits);
  out += ",\"peers\":[";
  for (std::size_t i = 0; i < m.peers.size(); ++i) {
    const auto& p = m.peers[i];
    if (i) out += ',';
    out += "{\"node_id\":" + std::to_string(p.node_id);
    out += ",\"name\":\"" + escape(p.name) + "\"";
    out += ",\"version\":" + std::to_string(p.version);
    out += ",\"forwards_sent\":" + std::to_string(p.forwards_sent);
    out += ",\"forwards_received\":" + std::to_string(p.forwards_received);
    out += ",\"deltas_sent\":" + std::to_string(p.deltas_sent);
    out += ",\"deltas_received\":" + std::to_string(p.deltas_received);
    out += '}';
  }
  out += "],\"subscriptions\":[";
  for (std::size_t i = 0; i < m.subscriptions.size(); ++i) {
    const auto& s = m.subscriptions[i];
    if (i) out += ',';
    out += "{\"id\":" + std::to_string(s.id);
    out += ",\"subscriber\":\"" + escape(s.subscriber) + "\"";
    out += ",\"family\":" + std::to_string(s.family);
    out += ",\"priority\":" + std::to_string(s.priority);
    out += ",\"prefix_count\":" + std::to_string(s.prefix_count);
    out += ",\"acked_day\":" + std::to_string(s.acked_day);
    out += ",\"acked_seq\":" + std::to_string(s.acked_seq);
    out += ",\"lag_days\":" + std::to_string(s.lag_days);
    out += ",\"chunks_pushed\":" + std::to_string(s.chunks_pushed);
    out += ",\"chunks_dropped\":" + std::to_string(s.chunks_dropped);
    out += '}';
  }
  out += "]}}\n";
  return out;
}

std::string json_response(const Response& response) {
  return std::visit(
      [](const auto& resp) -> std::string {
        using T = std::decay_t<decltype(resp)>;
        if constexpr (std::is_same_v<T, ErrorResponse>) {
          return json_error(resp);
        } else if constexpr (std::is_same_v<T, SummaryResponse>) {
          return json_summary(resp.summary);
        } else if constexpr (std::is_same_v<T, StabilityResponse>) {
          return json_stability(resp.report);
        } else if constexpr (std::is_same_v<T, HistoryResponse>) {
          return json_history(resp.prefix, resp.days);
        } else if constexpr (std::is_same_v<T, IntermittentResponse>) {
          return json_intermittent(resp.anycast_based, resp.gcd);
        } else if constexpr (std::is_same_v<T, ExportDayResponse>) {
          // CSV is already a text format; wrap it so the output is one
          // JSON document per response like every other renderer.
          return "{\"export_day\":{\"day\":" + std::to_string(resp.day) +
                 ",\"csv\":\"" + escape(resp.csv) + "\"}}\n";
        } else if constexpr (std::is_same_v<T, StatsResponse>) {
          return json_stats(resp.stats);
        } else if constexpr (std::is_same_v<T, LatencyResponse>) {
          return json_latency(resp.stages);
        } else if constexpr (std::is_same_v<T, TraceTailResponse>) {
          return json_trace_tail(resp);
        } else if constexpr (std::is_same_v<T, FlightRecTailResponse>) {
          return json_flightrec_tail(resp.events);
        } else if constexpr (std::is_same_v<T, MeshStatsResponse>) {
          return json_mesh_stats(resp);
        }
      },
      response);
}

}  // namespace laces::serve
