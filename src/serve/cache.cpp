#include "serve/cache.hpp"

namespace laces::serve {
namespace {

/// FNV-1a over the key bytes — cheap, deterministic shard selection.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string_view view_of(const std::string& s) { return s; }

}  // namespace

ResponseCache::ResponseCache(std::size_t shards, std::size_t entries_per_shard,
                             std::size_t negative_entries_per_shard)
    : entries_per_shard_(entries_per_shard == 0 ? 1 : entries_per_shard),
      negative_entries_per_shard_(negative_entries_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& reg = obs::Registry::global();
  hits_counter_ = &reg.counter("laces_serve_response_cache_hits_total");
  misses_counter_ = &reg.counter("laces_serve_response_cache_misses_total");
  inserts_counter_ = &reg.counter("laces_serve_response_cache_inserts_total");
  evictions_counter_ =
      &reg.counter("laces_serve_response_cache_evictions_total");
  negative_hits_counter_ =
      &reg.counter("laces_serve_response_cache_negative_hits_total");
  negative_inserts_counter_ =
      &reg.counter("laces_serve_response_cache_negative_inserts_total");
}

ResponseCache::Shard& ResponseCache::shard_for(
    std::span<const std::uint8_t> key) {
  return *shards_[fnv1a(key) % shards_.size()];
}

std::shared_ptr<const std::vector<std::uint8_t>> ResponseCache::lookup(
    std::span<const std::uint8_t> key) {
  Shard& shard = shard_for(key);
  const std::string_view wanted(reinterpret_cast<const char*>(key.data()),
                                key.size());
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.by_key.find(wanted); it != shard.by_key.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_counter_->add(1);
    return it->second->second;
  }
  if (const auto it = shard.neg_by_key.find(wanted);
      it != shard.neg_by_key.end()) {
    shard.neg_lru.splice(shard.neg_lru.begin(), shard.neg_lru, it->second);
    negative_hits_.fetch_add(1, std::memory_order_relaxed);
    negative_hits_counter_->add(1);
    return it->second->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_counter_->add(1);
  return nullptr;
}

void ResponseCache::insert(
    std::span<const std::uint8_t> key,
    std::shared_ptr<const std::vector<std::uint8_t>> value) {
  Shard& shard = shard_for(key);
  const std::string_view wanted(reinterpret_cast<const char*>(key.data()),
                                key.size());
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.by_key.find(wanted); it != shard.by_key.end()) {
    // Concurrent computation of the same response: refresh recency, keep
    // the existing value (bodies are canonical, so they are identical).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(Key(wanted), std::move(value));
  shard.by_key.emplace(view_of(shard.lru.front().first), shard.lru.begin());
  inserts_counter_->add(1);
  if (shard.lru.size() > entries_per_shard_) {
    shard.by_key.erase(view_of(shard.lru.back().first));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_counter_->add(1);
  }
}

void ResponseCache::insert_negative(
    std::span<const std::uint8_t> key,
    std::shared_ptr<const std::vector<std::uint8_t>> value) {
  if (negative_entries_per_shard_ == 0) return;
  Shard& shard = shard_for(key);
  const std::string_view wanted(reinterpret_cast<const char*>(key.data()),
                                key.size());
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.neg_by_key.find(wanted);
      it != shard.neg_by_key.end()) {
    shard.neg_lru.splice(shard.neg_lru.begin(), shard.neg_lru, it->second);
    return;
  }
  shard.neg_lru.emplace_front(Key(wanted), std::move(value));
  shard.neg_by_key.emplace(view_of(shard.neg_lru.front().first),
                           shard.neg_lru.begin());
  negative_inserts_counter_->add(1);
  if (shard.neg_lru.size() > negative_entries_per_shard_) {
    shard.neg_by_key.erase(view_of(shard.neg_lru.back().first));
    shard.neg_lru.pop_back();
  }
}

void ResponseCache::invalidate_negative() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->neg_by_key.clear();
    shard->neg_lru.clear();
  }
}

void ResponseCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->by_key.clear();
    shard->lru.clear();
    shard->neg_by_key.clear();
    shard->neg_lru.clear();
  }
}

std::size_t ResponseCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    n += shard->lru.size();
  }
  return n;
}

std::size_t ResponseCache::negative_size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    n += shard->neg_lru.size();
  }
  return n;
}

}  // namespace laces::serve
