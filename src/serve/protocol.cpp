#include "serve/protocol.hpp"

#include "core/channel.hpp"
#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace laces::serve {
namespace {

enum class RequestTag : std::uint8_t {
  kSummary = 1,
  kStability = 2,
  kHistory = 3,
  kIntermittent = 4,
  kExportDay = 5,
  kStats = 6,
  kLatency = 7,
  kTraceTail = 8,
  kFlightRecTail = 9,
  kMeshStats = 10,
};

enum class ResponseTag : std::uint8_t {
  kError = 1,
  kSummary = 2,
  kStability = 3,
  kHistory = 4,
  kIntermittent = 5,
  kExportDay = 6,
  kStats = 7,
  kLatency = 8,
  kTraceTail = 9,
  kFlightRecTail = 10,
  kMeshStats = 11,
};

void put_prefix(ByteWriter& w, const net::Prefix& prefix) {
  if (prefix.version() == net::IpVersion::kV4) {
    w.u8(4);
    w.u32(prefix.v4().address().value());
    w.u8(prefix.v4().length());
  } else {
    w.u8(6);
    w.u64(prefix.v6().address().hi());
    w.u64(prefix.v6().address().lo());
    w.u8(prefix.v6().length());
  }
}

net::Prefix get_prefix(ByteReader& r) {
  const std::uint8_t version = r.u8();
  if (version == 4) {
    const auto addr = net::Ipv4Address(r.u32());
    return net::Ipv4Prefix(addr, r.u8());
  }
  if (version == 6) {
    const auto hi = r.u64();
    const auto lo = r.u64();
    return net::Ipv6Prefix(net::Ipv6Address(hi, lo), r.u8());
  }
  throw ProtocolError("prefix: bad IP version byte " + std::to_string(version));
}

void put_prefix_list(ByteWriter& w, const std::vector<net::Prefix>& prefixes) {
  w.varint(prefixes.size());
  for (const auto& p : prefixes) put_prefix(w, p);
}

std::vector<net::Prefix> get_prefix_list(ByteReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<net::Prefix> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_prefix(r));
  return out;
}

void put_stats(ByteWriter& w, const census::StabilityStats& s) {
  w.varint(s.days);
  w.varint(s.degraded_days);
  w.varint(s.union_size);
  w.varint(s.every_day);
  w.f64(s.daily_mean);
}

census::StabilityStats get_stats(ByteReader& r) {
  census::StabilityStats s;
  s.days = static_cast<std::size_t>(r.varint());
  s.degraded_days = static_cast<std::size_t>(r.varint());
  s.union_size = static_cast<std::size_t>(r.varint());
  s.every_day = static_cast<std::size_t>(r.varint());
  s.daily_mean = r.f64();
  return s;
}

void put_history_day(ByteWriter& w, const store::HistoryDay& h) {
  w.u32(h.day);
  std::uint8_t flags = 0;
  if (h.degraded) flags |= 1;
  if (h.published) flags |= 2;
  if (h.anycast_based) flags |= 4;
  if (h.gcd_confirmed) flags |= 8;
  w.u8(flags);
  w.varint(h.max_vp_count);
  w.varint(h.gcd_sites);
}

store::HistoryDay get_history_day(ByteReader& r) {
  store::HistoryDay h;
  h.day = r.u32();
  const std::uint8_t flags = r.u8();
  if (flags > 15) {
    throw ProtocolError("history day: unknown flag bits " +
                        std::to_string(flags));
  }
  h.degraded = flags & 1;
  h.published = flags & 2;
  h.anycast_based = flags & 4;
  h.gcd_confirmed = flags & 8;
  h.max_vp_count = static_cast<std::uint32_t>(r.varint());
  h.gcd_sites = static_cast<std::uint32_t>(r.varint());
  return h;
}

void put_serve_stats(ByteWriter& w, const ServeStats& s) {
  w.varint(s.requests_executed);
  w.varint(s.requests_shed);
  w.varint(s.auth_failures);
  w.varint(s.response_cache_hits);
  w.varint(s.response_cache_misses);
  w.varint(s.response_cache_evictions);
  w.varint(s.response_cache_entries);
  w.varint(s.negative_cache_hits);
  w.varint(s.negative_cache_entries);
  w.varint(s.segment_cache_hits);
  w.varint(s.segment_cache_misses);
  w.varint(s.flightrec_recorded);
  w.varint(s.flightrec_overwritten);
  w.u32(s.workers);
  w.u32(s.queue_depth);
  w.u32(s.queue_capacity);
  w.u32(s.active_spans);
  w.u8(s.draining ? 1 : 0);
}

ServeStats get_serve_stats(ByteReader& r) {
  ServeStats s;
  s.requests_executed = r.varint();
  s.requests_shed = r.varint();
  s.auth_failures = r.varint();
  s.response_cache_hits = r.varint();
  s.response_cache_misses = r.varint();
  s.response_cache_evictions = r.varint();
  s.response_cache_entries = r.varint();
  s.negative_cache_hits = r.varint();
  s.negative_cache_entries = r.varint();
  s.segment_cache_hits = r.varint();
  s.segment_cache_misses = r.varint();
  s.flightrec_recorded = r.varint();
  s.flightrec_overwritten = r.varint();
  s.workers = r.u32();
  s.queue_depth = r.u32();
  s.queue_capacity = r.u32();
  s.active_spans = r.u32();
  const std::uint8_t draining = r.u8();
  if (draining > 1) {
    throw ProtocolError("stats: bad draining flag " +
                        std::to_string(draining));
  }
  s.draining = draining != 0;
  return s;
}

void put_stage(ByteWriter& w, const StageLatency& s) {
  w.str(s.stage);
  w.varint(s.count);
  w.f64(s.p50_us);
  w.f64(s.p99_us);
  w.f64(s.p999_us);
  w.f64(s.max_us);
}

StageLatency get_stage(ByteReader& r) {
  StageLatency s;
  s.stage = r.str();
  s.count = r.varint();
  s.p50_us = r.f64();
  s.p99_us = r.f64();
  s.p999_us = r.f64();
  s.max_us = r.f64();
  return s;
}

void put_span(ByteWriter& w, const SpanInfo& s) {
  w.varint(s.id);
  w.varint(s.parent);
  w.str(s.name);
  w.i64(s.start_ns);
  w.i64(s.end_ns);
}

SpanInfo get_span(ByteReader& r) {
  SpanInfo s;
  s.id = r.varint();
  s.parent = r.varint();
  s.name = r.str();
  s.start_ns = r.i64();
  s.end_ns = r.i64();
  return s;
}

void put_mesh_peer(ByteWriter& w, const MeshPeerInfo& p) {
  w.u64(p.node_id);
  w.str(p.name);
  w.u8(p.version);
  w.varint(p.forwards_sent);
  w.varint(p.forwards_received);
  w.varint(p.deltas_sent);
  w.varint(p.deltas_received);
}

MeshPeerInfo get_mesh_peer(ByteReader& r) {
  MeshPeerInfo p;
  p.node_id = r.u64();
  p.name = r.str();
  p.version = r.u8();
  p.forwards_sent = r.varint();
  p.forwards_received = r.varint();
  p.deltas_sent = r.varint();
  p.deltas_received = r.varint();
  return p;
}

void put_mesh_subscription(ByteWriter& w, const MeshSubscriptionInfo& s) {
  w.varint(s.id);
  w.str(s.subscriber);
  w.u8(s.family);
  w.u8(s.priority);
  w.u32(s.prefix_count);
  w.u32(s.acked_day);
  w.u32(s.acked_seq);
  w.u32(s.lag_days);
  w.varint(s.chunks_pushed);
  w.varint(s.chunks_dropped);
}

MeshSubscriptionInfo get_mesh_subscription(ByteReader& r) {
  MeshSubscriptionInfo s;
  s.id = r.varint();
  s.subscriber = r.str();
  s.family = r.u8();
  if (s.family != 0 && s.family != 4 && s.family != 6) {
    throw ProtocolError("mesh subscription: bad family " +
                        std::to_string(s.family));
  }
  s.priority = r.u8();
  s.prefix_count = r.u32();
  s.acked_day = r.u32();
  s.acked_seq = r.u32();
  s.lag_days = r.u32();
  s.chunks_pushed = r.varint();
  s.chunks_dropped = r.varint();
  return s;
}

void put_mesh_stats(ByteWriter& w, const MeshStatsResponse& m) {
  w.u64(m.node_id);
  w.str(m.name);
  w.u32(m.feed_day);
  w.u32(m.feed_seq);
  w.varint(m.deltas_published);
  w.varint(m.deltas_forwarded);
  w.varint(m.deltas_dropped);
  w.varint(m.duplicate_deltas);
  w.varint(m.forwards_seen);
  w.varint(m.forward_dups_suppressed);
  w.varint(m.forwards_answered);
  w.varint(m.negative_cache_hits);
  w.varint(m.peers.size());
  for (const auto& p : m.peers) put_mesh_peer(w, p);
  w.varint(m.subscriptions.size());
  for (const auto& s : m.subscriptions) put_mesh_subscription(w, s);
}

MeshStatsResponse get_mesh_stats(ByteReader& r) {
  MeshStatsResponse m;
  m.node_id = r.u64();
  m.name = r.str();
  m.feed_day = r.u32();
  m.feed_seq = r.u32();
  m.deltas_published = r.varint();
  m.deltas_forwarded = r.varint();
  m.deltas_dropped = r.varint();
  m.duplicate_deltas = r.varint();
  m.forwards_seen = r.varint();
  m.forward_dups_suppressed = r.varint();
  m.forwards_answered = r.varint();
  m.negative_cache_hits = r.varint();
  const std::uint64_t peers = r.varint();
  m.peers.reserve(static_cast<std::size_t>(peers));
  for (std::uint64_t i = 0; i < peers; ++i) m.peers.push_back(get_mesh_peer(r));
  const std::uint64_t subs = r.varint();
  m.subscriptions.reserve(static_cast<std::size_t>(subs));
  for (std::uint64_t i = 0; i < subs; ++i) {
    m.subscriptions.push_back(get_mesh_subscription(r));
  }
  return m;
}

void put_flight_event(ByteWriter& w, const FlightEvent& e) {
  w.i64(e.wall_ns);
  w.i64(e.sim_ns);
  w.u64(e.a);
  w.varint(e.seq);
  w.u32(e.b);
  w.u32(e.ring);
  w.u16(e.code);
  w.u8(e.kind);
}

FlightEvent get_flight_event(ByteReader& r) {
  FlightEvent e;
  e.wall_ns = r.i64();
  e.sim_ns = r.i64();
  e.a = r.u64();
  e.seq = r.varint();
  e.b = r.u32();
  e.ring = r.u32();
  e.code = r.u16();
  e.kind = r.u8();
  return e;
}

/// Rethrows byte-level underruns as protocol errors so callers see one
/// exception type for "this payload is not a valid body".
template <typename Fn>
auto guarded(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const DecodeError& e) {
    throw ProtocolError(std::string(what) + ": " + e.what());
  }
}

}  // namespace

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kUnknownDay:
      return "unknown-day";
    case ErrorCode::kCorruptArchive:
      return "corrupt-archive";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kVersionMismatch:
      return "version-mismatch";
    case ErrorCode::kUnreachable:
      return "unreachable";
  }
  return "?";
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  ByteWriter w;
  std::visit(
      [&w](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, SummaryRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kSummary));
        } else if constexpr (std::is_same_v<T, StabilityRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kStability));
        } else if constexpr (std::is_same_v<T, HistoryRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kHistory));
          put_prefix(w, req.prefix);
        } else if constexpr (std::is_same_v<T, IntermittentRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kIntermittent));
        } else if constexpr (std::is_same_v<T, ExportDayRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kExportDay));
          w.u32(req.day);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kStats));
        } else if constexpr (std::is_same_v<T, LatencyRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kLatency));
        } else if constexpr (std::is_same_v<T, TraceTailRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kTraceTail));
          w.u32(req.max);
        } else if constexpr (std::is_same_v<T, FlightRecTailRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kFlightRecTail));
          w.u32(req.max);
        } else if constexpr (std::is_same_v<T, MeshStatsRequest>) {
          w.u8(static_cast<std::uint8_t>(RequestTag::kMeshStats));
        }
      },
      request);
  return w.take();
}

Request decode_request(std::span<const std::uint8_t> bytes) {
  return guarded("request", [&]() -> Request {
    ByteReader r(bytes);
    const auto tag = static_cast<RequestTag>(r.u8());
    Request request;
    switch (tag) {
      case RequestTag::kSummary:
        request = SummaryRequest{};
        break;
      case RequestTag::kStability:
        request = StabilityRequest{};
        break;
      case RequestTag::kHistory: {
        HistoryRequest req;
        req.prefix = get_prefix(r);
        request = req;
        break;
      }
      case RequestTag::kIntermittent:
        request = IntermittentRequest{};
        break;
      case RequestTag::kExportDay: {
        ExportDayRequest req;
        req.day = r.u32();
        request = req;
        break;
      }
      case RequestTag::kStats:
        request = StatsRequest{};
        break;
      case RequestTag::kLatency:
        request = LatencyRequest{};
        break;
      case RequestTag::kTraceTail: {
        TraceTailRequest req;
        req.max = r.u32();
        request = req;
        break;
      }
      case RequestTag::kFlightRecTail: {
        FlightRecTailRequest req;
        req.max = r.u32();
        request = req;
        break;
      }
      case RequestTag::kMeshStats:
        request = MeshStatsRequest{};
        break;
      default:
        throw ProtocolError("request: unknown tag " +
                            std::to_string(static_cast<int>(tag)));
    }
    if (!r.done()) throw ProtocolError("request: trailing bytes");
    return request;
  });
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  ByteWriter w;
  std::visit(
      [&w](const auto& resp) {
        using T = std::decay_t<decltype(resp)>;
        if constexpr (std::is_same_v<T, ErrorResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kError));
          w.u8(static_cast<std::uint8_t>(resp.code));
          w.str(resp.message);
          w.u32(resp.retry_after_ms);
        } else if constexpr (std::is_same_v<T, SummaryResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kSummary));
          const auto& s = resp.summary;
          w.varint(s.days);
          w.varint(s.degraded_days);
          w.u32(s.first_day);
          w.u32(s.last_day);
          w.varint(s.records_total);
          w.varint(s.segment_bytes);
          w.varint(s.csv_bytes);
          w.f64(s.compression_ratio);
          w.f64(s.anycast_daily_mean);
          w.f64(s.gcd_daily_mean);
        } else if constexpr (std::is_same_v<T, StabilityResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kStability));
          put_stats(w, resp.report.anycast_based);
          put_stats(w, resp.report.gcd);
          w.u8(resp.report.from_checkpoint ? 1 : 0);
        } else if constexpr (std::is_same_v<T, HistoryResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kHistory));
          put_prefix(w, resp.prefix);
          w.varint(resp.days.size());
          for (const auto& h : resp.days) put_history_day(w, h);
        } else if constexpr (std::is_same_v<T, IntermittentResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kIntermittent));
          put_prefix_list(w, resp.anycast_based);
          put_prefix_list(w, resp.gcd);
        } else if constexpr (std::is_same_v<T, ExportDayResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kExportDay));
          w.u32(resp.day);
          w.str(resp.csv);
        } else if constexpr (std::is_same_v<T, StatsResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kStats));
          put_serve_stats(w, resp.stats);
        } else if constexpr (std::is_same_v<T, LatencyResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kLatency));
          w.varint(resp.stages.size());
          for (const auto& s : resp.stages) put_stage(w, s);
        } else if constexpr (std::is_same_v<T, TraceTailResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kTraceTail));
          w.varint(resp.spans.size());
          for (const auto& s : resp.spans) put_span(w, s);
          w.varint(resp.dropped);
        } else if constexpr (std::is_same_v<T, FlightRecTailResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kFlightRecTail));
          w.varint(resp.events.size());
          for (const auto& e : resp.events) put_flight_event(w, e);
        } else if constexpr (std::is_same_v<T, MeshStatsResponse>) {
          w.u8(static_cast<std::uint8_t>(ResponseTag::kMeshStats));
          put_mesh_stats(w, resp);
        }
      },
      response);
  return w.take();
}

Response decode_response(std::span<const std::uint8_t> bytes) {
  return guarded("response", [&]() -> Response {
    ByteReader r(bytes);
    const auto tag = static_cast<ResponseTag>(r.u8());
    Response response;
    switch (tag) {
      case ResponseTag::kError: {
        ErrorResponse resp;
        const std::uint8_t code = r.u8();
        if (code < 1 || code > 7) {
          throw ProtocolError("error response: unknown code " +
                              std::to_string(code));
        }
        resp.code = static_cast<ErrorCode>(code);
        resp.message = r.str();
        resp.retry_after_ms = r.u32();
        response = std::move(resp);
        break;
      }
      case ResponseTag::kSummary: {
        SummaryResponse resp;
        auto& s = resp.summary;
        s.days = static_cast<std::size_t>(r.varint());
        s.degraded_days = static_cast<std::size_t>(r.varint());
        s.first_day = r.u32();
        s.last_day = r.u32();
        s.records_total = r.varint();
        s.segment_bytes = r.varint();
        s.csv_bytes = r.varint();
        s.compression_ratio = r.f64();
        s.anycast_daily_mean = r.f64();
        s.gcd_daily_mean = r.f64();
        response = std::move(resp);
        break;
      }
      case ResponseTag::kStability: {
        StabilityResponse resp;
        resp.report.anycast_based = get_stats(r);
        resp.report.gcd = get_stats(r);
        resp.report.from_checkpoint = r.u8() != 0;
        response = std::move(resp);
        break;
      }
      case ResponseTag::kHistory: {
        HistoryResponse resp;
        resp.prefix = get_prefix(r);
        const std::uint64_t n = r.varint();
        resp.days.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
          resp.days.push_back(get_history_day(r));
        }
        response = std::move(resp);
        break;
      }
      case ResponseTag::kIntermittent: {
        IntermittentResponse resp;
        resp.anycast_based = get_prefix_list(r);
        resp.gcd = get_prefix_list(r);
        response = std::move(resp);
        break;
      }
      case ResponseTag::kExportDay: {
        ExportDayResponse resp;
        resp.day = r.u32();
        resp.csv = r.str();
        response = std::move(resp);
        break;
      }
      case ResponseTag::kStats: {
        StatsResponse resp;
        resp.stats = get_serve_stats(r);
        response = std::move(resp);
        break;
      }
      case ResponseTag::kLatency: {
        LatencyResponse resp;
        const std::uint64_t n = r.varint();
        resp.stages.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) resp.stages.push_back(get_stage(r));
        response = std::move(resp);
        break;
      }
      case ResponseTag::kTraceTail: {
        TraceTailResponse resp;
        const std::uint64_t n = r.varint();
        resp.spans.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) resp.spans.push_back(get_span(r));
        resp.dropped = r.varint();
        response = std::move(resp);
        break;
      }
      case ResponseTag::kFlightRecTail: {
        FlightRecTailResponse resp;
        const std::uint64_t n = r.varint();
        resp.events.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
          resp.events.push_back(get_flight_event(r));
        }
        response = std::move(resp);
        break;
      }
      case ResponseTag::kMeshStats:
        response = get_mesh_stats(r);
        break;
      default:
        throw ProtocolError("response: unknown tag " +
                            std::to_string(static_cast<int>(tag)));
    }
    if (!r.done()) throw ProtocolError("response: trailing bytes");
    return response;
  });
}

std::vector<std::uint8_t> encode_frame(const std::string& key, FrameKind kind,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version) {
  ByteWriter w;
  w.u16(kFrameMagic);
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  // The MAC covers the whole frame prefix — header *and* payload — so a
  // tampered request_id or kind fails authentication, not just a tampered
  // body.
  const Sha256Digest mac = core::frame_mac(key, w.view());
  w.bytes(mac);
  return w.take();
}

Frame decode_frame(const std::string& key, std::span<const std::uint8_t> bytes,
                   std::uint8_t max_version) {
  return guarded("frame", [&]() -> Frame {
    ByteReader r(bytes);
    if (r.u16() != kFrameMagic) throw ProtocolError("frame: bad magic");
    const std::uint8_t version = r.u8();
    if (version < kProtocolVersionMin || version > max_version ||
        version > kProtocolVersionMax) {
      throw ProtocolError("frame: unsupported protocol version " +
                          std::to_string(version));
    }
    const std::uint8_t kind = r.u8();
    if (kind != static_cast<std::uint8_t>(FrameKind::kRequest) &&
        kind != static_cast<std::uint8_t>(FrameKind::kResponse) &&
        kind != static_cast<std::uint8_t>(FrameKind::kMesh)) {
      throw ProtocolError("frame: unknown kind " + std::to_string(kind));
    }
    if (kind == static_cast<std::uint8_t>(FrameKind::kMesh) &&
        version < kMeshProtocolVersion) {
      throw ProtocolError("frame: mesh frames require protocol version >= " +
                          std::to_string(kMeshProtocolVersion));
    }
    Frame frame;
    frame.version = version;
    frame.kind = static_cast<FrameKind>(kind);
    frame.request_id = r.u64();
    const std::uint32_t len = r.u32();
    const auto payload = r.bytes(len);
    const auto mac_bytes = r.bytes(32);
    if (!r.done()) throw ProtocolError("frame: trailing bytes");
    Sha256Digest mac;
    std::copy(mac_bytes.begin(), mac_bytes.end(), mac.begin());
    const auto signed_prefix = bytes.first(bytes.size() - 32);
    if (!digest_equal(mac, core::frame_mac(key, signed_prefix))) {
      throw ProtocolError("frame: MAC verification failed");
    }
    frame.payload.assign(payload.begin(), payload.end());
    return frame;
  });
}

std::string_view request_label(const Request& request) {
  return std::visit(
      [](const auto& req) -> std::string_view {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, SummaryRequest>) return "summary";
        if constexpr (std::is_same_v<T, StabilityRequest>) return "stability";
        if constexpr (std::is_same_v<T, HistoryRequest>) return "history";
        if constexpr (std::is_same_v<T, IntermittentRequest>) {
          return "intermittent";
        }
        if constexpr (std::is_same_v<T, ExportDayRequest>) return "export-day";
        if constexpr (std::is_same_v<T, StatsRequest>) return "stats";
        if constexpr (std::is_same_v<T, LatencyRequest>) return "latency";
        if constexpr (std::is_same_v<T, TraceTailRequest>) return "trace-tail";
        if constexpr (std::is_same_v<T, FlightRecTailRequest>) {
          return "flightrec-tail";
        }
        if constexpr (std::is_same_v<T, MeshStatsRequest>) return "mesh-stats";
      },
      request);
}

bool is_admin_request(const Request& request) {
  return std::holds_alternative<StatsRequest>(request) ||
         std::holds_alternative<LatencyRequest>(request) ||
         std::holds_alternative<TraceTailRequest>(request) ||
         std::holds_alternative<FlightRecTailRequest>(request) ||
         std::holds_alternative<MeshStatsRequest>(request);
}

}  // namespace laces::serve
