// Machine-readable JSON rendering of query results.
//
// One implementation serves both consumers: `laces query --json` renders
// QueryEngine results offline, and the serve client/CLI renders decoded
// Response bodies. Because both paths call these exact functions, an
// offline query and a served query over the same archive produce
// byte-identical JSON — the integration tests assert exactly that.
// Output is single-line, key-ordered, newline-terminated.
#pragma once

#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace laces::serve {

std::string json_summary(const store::ArchiveSummary& summary);
std::string json_stability(const store::StabilityReport& report);
std::string json_history(const net::Prefix& prefix,
                         const std::vector<store::HistoryDay>& days);
std::string json_intermittent(const std::vector<net::Prefix>& anycast_based,
                              const std::vector<net::Prefix>& gcd);
std::string json_error(const ErrorResponse& error);
std::string json_stats(const ServeStats& stats);
std::string json_latency(const std::vector<StageLatency>& stages);
std::string json_trace_tail(const TraceTailResponse& tail);
std::string json_flightrec_tail(const std::vector<FlightEvent>& events);
std::string json_mesh_stats(const MeshStatsResponse& mesh);

/// Dispatches a decoded response body to the renderer above.
std::string json_response(const Response& response);

}  // namespace laces::serve
