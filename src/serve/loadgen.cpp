#include "serve/loadgen.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "serve/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace laces::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// One measured request: its class label (static storage from
/// request_label) and the client-observed round-trip latency.
struct Sample {
  std::string_view cls;
  double ms = 0.0;
};

struct ClientResult {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::vector<Sample> samples;
};

/// Deterministic weighted pick of the next request for one client.
Request next_request(Rng& rng, const LoadGenConfig& config,
                     const std::vector<net::Prefix>& prefixes,
                     const std::vector<std::uint32_t>& days) {
  const unsigned w_history = prefixes.empty() ? 0 : config.weight_history;
  const unsigned w_export = days.empty() ? 0 : config.weight_export_day;
  const unsigned total = config.weight_summary + config.weight_stability +
                         w_history + config.weight_intermittent + w_export;
  std::uint64_t pick = total == 0 ? 0 : rng.uniform_int(1, total);
  if (pick <= config.weight_summary) return SummaryRequest{};
  pick -= config.weight_summary;
  if (pick <= config.weight_stability) return StabilityRequest{};
  pick -= config.weight_stability;
  if (pick <= w_history) {
    HistoryRequest req;
    req.prefix = prefixes[rng.uniform_int(0, prefixes.size() - 1)];
    return req;
  }
  pick -= w_history;
  if (pick <= config.weight_intermittent) return IntermittentRequest{};
  ExportDayRequest req;
  req.day = days.empty() ? 0 : days[rng.uniform_int(0, days.size() - 1)];
  return req;
}

/// One client thread. `id_salt` keeps request ids distinct between the
/// warm-up and measured rounds (both replay the same seed on purpose, so
/// the warm-up faults in exactly the entries the measured round will hit).
void run_client(Server& server, const LoadGenConfig& config,
                const std::vector<net::Prefix>& prefixes,
                const std::vector<std::uint32_t>& days, std::size_t index,
                std::uint64_t id_salt, ClientResult& result) {
  auto connection = server.connect();
  Rng rng(config.seed * 0x9e37u + index);
  result.samples.reserve(config.requests_per_client);
  const double client_qps =
      config.target_qps > 0
          ? config.target_qps / static_cast<double>(config.clients)
          : 0.0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < config.requests_per_client; ++i) {
    if (client_qps > 0) {
      // Open-loop pacing: request i is due at start + i/qps, independent of
      // how long earlier requests took.
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(i / client_qps));
      std::this_thread::sleep_until(due);
    }
    const Request request = next_request(rng, config, prefixes, days);
    const auto frame = encode_frame(
        server.config().key, FrameKind::kRequest,
        /*request_id=*/(id_salt + index) << 32 | i, encode_request(request));
    const auto t0 = Clock::now();
    const auto reply = connection->call(frame);
    result.samples.push_back(
        {request_label(request),
         std::chrono::duration<double, std::milli>(Clock::now() - t0)
             .count()});
    ++result.requests;
    const Frame decoded = decode_frame(server.config().key, reply);
    const Response response = decode_response(decoded.payload);
    if (const auto* error = std::get_if<ErrorResponse>(&response)) {
      if (error->code == ErrorCode::kOverloaded ||
          error->code == ErrorCode::kShuttingDown) {
        ++result.shed;
      } else {
        ++result.errors;
      }
    } else {
      ++result.ok;
    }
  }
}

/// Spawns one client thread per configured client and joins them all.
void run_round(Server& server, const LoadGenConfig& config,
               const std::vector<net::Prefix>& prefixes,
               const std::vector<std::uint32_t>& days, std::uint64_t id_salt,
               std::vector<ClientResult>& results) {
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    clients.emplace_back(
        [&server, &config, &prefixes, &days, i, id_salt, &results] {
          run_client(server, config, prefixes, days, i, id_salt, results[i]);
        });
  }
  for (auto& client : clients) client.join();
}

}  // namespace

std::string LoadGenReport::to_json() const {
  char buf[640];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"serve_requests_per_sec\": %.3f,\n"
                "  \"serve_p50_ms\": %.6f,\n"
                "  \"serve_p99_ms\": %.6f,\n"
                "  \"serve_p999_ms\": %.6f,\n"
                "  \"serve_shed_rate\": %.6f,\n"
                "  \"serve_requests\": %llu,\n"
                "  \"serve_ok\": %llu,\n"
                "  \"serve_shed\": %llu,\n"
                "  \"serve_errors\": %llu,\n"
                "  \"serve_elapsed_s\": %.3f\n"
                "}\n",
                requests_per_sec, p50_ms, p99_ms, p999_ms, shed_rate,
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(errors), elapsed_s);
  return buf;
}

std::string LoadGenReport::describe() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "requests: %llu (%llu ok, %llu shed, %llu errors)\n"
                "throughput: %.0f req/s over %.2f s\n"
                "latency: p50 %.3f ms, p99 %.3f ms, p999 %.3f ms\n"
                "shed rate: %.2f%%\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(errors), requests_per_sec,
                elapsed_s, p50_ms, p99_ms, p999_ms, 100.0 * shed_rate);
  std::string out = buf;
  for (const auto& cls : classes) {
    std::snprintf(buf, sizeof buf,
                  "  %-12s %8llu req  p50 %8.3f ms  p99 %8.3f ms  "
                  "p999 %8.3f ms\n",
                  cls.name.c_str(),
                  static_cast<unsigned long long>(cls.requests), cls.p50_ms,
                  cls.p99_ms, cls.p999_ms);
    out += buf;
  }
  return out;
}

LoadGenReport run_load(Server& server,
                       const std::vector<net::Prefix>& prefixes,
                       const std::vector<std::uint32_t>& days,
                       const LoadGenConfig& config) {
  if (config.warmup_requests_per_client > 0) {
    // Discarded round: same seed (so it touches exactly the cache entries
    // the measured round will), distinct request-id space, no pacing.
    LoadGenConfig warm = config;
    warm.requests_per_client = config.warmup_requests_per_client;
    warm.warmup_requests_per_client = 0;
    warm.target_qps = 0.0;
    std::vector<ClientResult> discard(warm.clients);
    run_round(server, warm, prefixes, days, /*id_salt=*/warm.clients,
              discard);
  }

  std::vector<ClientResult> results(config.clients);
  const auto t0 = Clock::now();
  run_round(server, config, prefixes, days, /*id_salt=*/0, results);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadGenReport report;
  std::vector<double> latencies;
  // Per-class buckets, keyed by the label's stable address; ordered by
  // first appearance so describe() output is deterministic per seed.
  std::vector<std::string_view> class_names;
  std::vector<std::vector<double>> class_latencies;
  for (const auto& r : results) {
    report.requests += r.requests;
    report.ok += r.ok;
    report.shed += r.shed;
    report.errors += r.errors;
    for (const auto& sample : r.samples) {
      latencies.push_back(sample.ms);
      std::size_t slot = 0;
      while (slot < class_names.size() && class_names[slot] != sample.cls) {
        ++slot;
      }
      if (slot == class_names.size()) {
        class_names.push_back(sample.cls);
        class_latencies.emplace_back();
      }
      class_latencies[slot].push_back(sample.ms);
    }
  }
  report.elapsed_s = elapsed;
  if (elapsed > 0) {
    report.requests_per_sec = static_cast<double>(report.requests) / elapsed;
  }
  if (!latencies.empty()) {
    report.p50_ms = percentile(latencies, 50.0);
    report.p99_ms = percentile(latencies, 99.0);
    report.p999_ms = percentile(latencies, 99.9);
  }
  for (std::size_t i = 0; i < class_names.size(); ++i) {
    ClassLatency cls;
    cls.name = std::string(class_names[i]);
    cls.requests = class_latencies[i].size();
    cls.p50_ms = percentile(class_latencies[i], 50.0);
    cls.p99_ms = percentile(class_latencies[i], 99.0);
    cls.p999_ms = percentile(class_latencies[i], 99.9);
    report.classes.push_back(std::move(cls));
  }
  if (report.requests > 0) {
    report.shed_rate =
        static_cast<double>(report.shed) / static_cast<double>(report.requests);
  }
  return report;
}

}  // namespace laces::serve
