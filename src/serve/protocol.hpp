// laces_serve wire protocol: versioned, length-framed, HMAC-authenticated
// binary request/response pairs over an immutable census archive.
//
// A frame is
//
//   magic u16 ('L''S') | version u8 | kind u8 | request_id u64 |
//   payload_len u32 | payload bytes | HMAC-SHA256(key, payload) [32 bytes]
//
// The MAC is core::frame_mac — exactly the scheme the simulated
// control-plane Channel authenticates with (paper R8), so the query server
// inherits the census system's auth model instead of inventing one. The
// payload is the *canonical* encoding of a request or response body: the
// request's canonical bytes double as the server's response-cache key, and
// a response body is byte-identical whether it was computed or served from
// cache. request_id lives in the frame header, not the payload, so two
// clients asking the same question hash to the same cache entry.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "net/address.hpp"
#include "store/query.hpp"

namespace laces::serve {

/// Thrown when a frame or payload fails structural or cryptographic
/// validation (bad magic, unsupported version, length mismatch, bad MAC,
/// malformed body).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

constexpr std::uint16_t kFrameMagic = 0x4c53;  // "LS"
/// The v1 data plane: request/response frames. Unchanged since PR 5, so
/// every existing client keeps working byte-for-byte.
constexpr std::uint8_t kProtocolVersion = 1;
/// Version 2 adds the mesh plane (FrameKind::kMesh). A decoder accepts
/// [kProtocolVersionMin, kProtocolVersionMax]; relays negotiate the
/// highest version both peers speak (serve/../mesh/wire.hpp).
constexpr std::uint8_t kProtocolVersionMin = 1;
constexpr std::uint8_t kProtocolVersionMax = 2;
/// First frame version that carries mesh messages.
constexpr std::uint8_t kMeshProtocolVersion = 2;

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// Relay-to-relay mesh message (v2 frames only): the payload is a
  /// mesh::wire tagged body, not a Request/Response.
  kMesh = 3,
};

// --- requests ---

/// Manifest-only archive summary.
struct SummaryRequest {
  bool operator==(const SummaryRequest&) const = default;
};

/// Longitudinal stability statistics (both methods).
struct StabilityRequest {
  bool operator==(const StabilityRequest&) const = default;
};

/// Per-day detection history of one prefix.
struct HistoryRequest {
  net::Prefix prefix;
  bool operator==(const HistoryRequest&) const = default;
};

/// Intermittent prefix sets (detected on some but not all healthy days).
struct IntermittentRequest {
  bool operator==(const IntermittentRequest&) const = default;
};

/// One archived day in the §4.2.4 CSV publication format.
struct ExportDayRequest {
  std::uint32_t day = 0;
  bool operator==(const ExportDayRequest&) const = default;
};

// --- admin (introspection) requests ---
//
// Admin requests ride the same authenticated frames as data queries, but
// the server answers them inline on the submitting thread: they never
// enter the worker queue, are never cached, and are still served while
// the server is draining — an overloaded or shutting-down server can
// always be asked what is wrong with it.

/// Worker-pool, admission, cache and flight-recorder counters.
struct StatsRequest {
  bool operator==(const StatsRequest&) const = default;
};

/// Per-stage latency percentiles (queue wait / archive read / render /
/// total) from the server's LogHistograms.
struct LatencyRequest {
  bool operator==(const LatencyRequest&) const = default;
};

/// Most recent finished trace spans (0 = all retained).
struct TraceTailRequest {
  std::uint32_t max = 0;
  bool operator==(const TraceTailRequest&) const = default;
};

/// Merged flight-recorder tail (0 = everything retained).
struct FlightRecTailRequest {
  std::uint32_t max = 0;
  bool operator==(const FlightRecTailRequest&) const = default;
};

/// Per-peer mesh state: connected peers, subscriptions, cursor lag,
/// dropped-delta counts (src/mesh/relay.hpp). Answered inline by a relay;
/// a plain archive server answers with an empty snapshot.
struct MeshStatsRequest {
  bool operator==(const MeshStatsRequest&) const = default;
};

// New request types append at the END: RequestTag (protocol.cpp) is the
// variant index + 1, so earlier tags — and every archived client — keep
// their wire bytes.
using Request = std::variant<SummaryRequest, StabilityRequest, HistoryRequest,
                             IntermittentRequest, ExportDayRequest,
                             StatsRequest, LatencyRequest, TraceTailRequest,
                             FlightRecTailRequest, MeshStatsRequest>;

/// True for the introspection requests the server answers inline.
bool is_admin_request(const Request& request);

// --- responses ---

/// Typed failure. kOverloaded and kShuttingDown are *admission* errors —
/// the request never reached a worker; retry_after_ms tells a well-behaved
/// client how long to back off.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 1,    // malformed or unauthenticated request frame
  kUnknownDay = 2,    // day not present in the manifest
  kCorruptArchive = 3,  // a segment failed its SHA-256 / digest check
  kOverloaded = 4,    // queue full or per-connection in-flight cap hit
  kShuttingDown = 5,  // server is draining
  kVersionMismatch = 6,  // peers share no protocol version (mesh handshake)
  kUnreachable = 7,   // no relay in reach could answer (forward dead-end)
};

std::string_view to_string(ErrorCode code);

struct ErrorResponse {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
  std::uint32_t retry_after_ms = 0;
  bool operator==(const ErrorResponse&) const = default;
};

struct SummaryResponse {
  store::ArchiveSummary summary;
  bool operator==(const SummaryResponse&) const = default;
};

struct StabilityResponse {
  store::StabilityReport report;
  bool operator==(const StabilityResponse&) const = default;
};

struct HistoryResponse {
  net::Prefix prefix;
  std::vector<store::HistoryDay> days;
  bool operator==(const HistoryResponse&) const = default;
};

struct IntermittentResponse {
  std::vector<net::Prefix> anycast_based;
  std::vector<net::Prefix> gcd;
  bool operator==(const IntermittentResponse&) const = default;
};

struct ExportDayResponse {
  std::uint32_t day = 0;
  std::string csv;
  bool operator==(const ExportDayResponse&) const = default;
};

// --- admin (introspection) responses ---

/// A point-in-time operational snapshot of one server.
struct ServeStats {
  std::uint64_t requests_executed = 0;  // cache misses a worker answered
  std::uint64_t requests_shed = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t response_cache_hits = 0;
  std::uint64_t response_cache_misses = 0;
  std::uint64_t response_cache_evictions = 0;
  std::uint64_t response_cache_entries = 0;
  /// Negative arena (cached typed misses, e.g. unknown-day errors).
  std::uint64_t negative_cache_hits = 0;
  std::uint64_t negative_cache_entries = 0;
  std::uint64_t segment_cache_hits = 0;   // ArchiveReader decoded-segment LRU
  std::uint64_t segment_cache_misses = 0;
  std::uint64_t flightrec_recorded = 0;
  std::uint64_t flightrec_overwritten = 0;
  std::uint32_t workers = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;
  std::uint32_t active_spans = 0;  // open (unfinished) trace spans
  bool draining = false;
  bool operator==(const ServeStats&) const = default;
};

struct StatsResponse {
  ServeStats stats;
  bool operator==(const StatsResponse&) const = default;
};

/// One instrumented request-path stage ("queue_wait", "archive_read",
/// "render", "total"), percentiles in microseconds.
struct StageLatency {
  std::string stage;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  bool operator==(const StageLatency&) const = default;
};

struct LatencyResponse {
  std::vector<StageLatency> stages;
  bool operator==(const LatencyResponse&) const = default;
};

/// A finished trace span (obs::SpanRecord, flattened for the wire).
struct SpanInfo {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  std::int64_t start_ns = 0;  // simulated time
  std::int64_t end_ns = 0;
  bool operator==(const SpanInfo&) const = default;
};

struct TraceTailResponse {
  std::vector<SpanInfo> spans;
  std::uint64_t dropped = 0;  // spans lost to the tracer's buffer bound
  bool operator==(const TraceTailResponse&) const = default;
};

/// One flight-recorder event (obs::DecodedFlightEvent on the wire).
struct FlightEvent {
  std::int64_t wall_ns = 0;
  std::int64_t sim_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t seq = 0;
  std::uint32_t b = 0;
  std::uint32_t ring = 0;
  std::uint16_t code = 0;
  std::uint8_t kind = 0;
  bool operator==(const FlightEvent&) const = default;
};

struct FlightRecTailResponse {
  std::vector<FlightEvent> events;
  bool operator==(const FlightRecTailResponse&) const = default;
};

/// One connected mesh peer as seen by the answering relay.
struct MeshPeerInfo {
  std::uint64_t node_id = 0;
  std::string name;
  std::uint8_t version = 0;  // negotiated frame version on this link
  std::uint64_t forwards_sent = 0;
  std::uint64_t forwards_received = 0;
  std::uint64_t deltas_sent = 0;
  std::uint64_t deltas_received = 0;
  bool operator==(const MeshPeerInfo&) const = default;
};

/// One subscription registered at the answering relay.
struct MeshSubscriptionInfo {
  std::uint64_t id = 0;
  std::string subscriber;  // peer name, or "local" for in-process sinks
  std::uint8_t family = 0;  // 0 = both, 4, 6
  std::uint8_t priority = 0;  // higher flushes first
  std::uint32_t prefix_count = 0;  // 0 = all prefixes
  std::uint32_t acked_day = 0;
  std::uint32_t acked_seq = 0;
  /// Feed-head distance: days the subscriber's ack trails the relay's feed.
  std::uint32_t lag_days = 0;
  std::uint64_t chunks_pushed = 0;
  std::uint64_t chunks_dropped = 0;
  bool operator==(const MeshSubscriptionInfo&) const = default;
};

struct MeshStatsResponse {
  std::uint64_t node_id = 0;
  std::string name;
  std::uint32_t feed_day = 0;  // newest census day this relay has seen
  std::uint32_t feed_seq = 0;
  std::uint64_t deltas_published = 0;  // chunks originated here
  std::uint64_t deltas_forwarded = 0;  // chunks pushed to subscribers
  std::uint64_t deltas_dropped = 0;    // pushes to vanished peers
  std::uint64_t duplicate_deltas = 0;  // chunks at-or-below our cursor
  std::uint64_t forwards_seen = 0;     // forwards received (pre-dedup)
  std::uint64_t forward_dups_suppressed = 0;
  std::uint64_t forwards_answered = 0;  // answered from cache or archive
  std::uint64_t negative_cache_hits = 0;
  std::vector<MeshPeerInfo> peers;
  std::vector<MeshSubscriptionInfo> subscriptions;
  bool operator==(const MeshStatsResponse&) const = default;
};

// Appended at the END (see the Request variant note).
using Response =
    std::variant<ErrorResponse, SummaryResponse, StabilityResponse,
                 HistoryResponse, IntermittentResponse, ExportDayResponse,
                 StatsResponse, LatencyResponse, TraceTailResponse,
                 FlightRecTailResponse, MeshStatsResponse>;

// --- body codecs (canonical bytes) ---

/// Canonical request encoding; identical requests encode to identical
/// bytes (this is the response-cache key).
std::vector<std::uint8_t> encode_request(const Request& request);
Request decode_request(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_response(const Response& response);
Response decode_response(std::span<const std::uint8_t> bytes);

// --- framing ---

/// A parsed, authenticated frame.
struct Frame {
  std::uint8_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kRequest;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Wraps a body in a signed frame. `version` defaults to the v1 data
/// plane; mesh frames pass kMeshProtocolVersion (kMesh is rejected below
/// v2 at decode).
std::vector<std::uint8_t> encode_frame(const std::string& key, FrameKind kind,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version = kProtocolVersion);

/// Verifies structure and MAC; throws ProtocolError on any mismatch.
/// `max_version` lets a version-pinned endpoint (e.g. a v1-only relay in a
/// skewed mesh) structurally refuse newer frames instead of parsing them.
Frame decode_frame(const std::string& key, std::span<const std::uint8_t> bytes,
                   std::uint8_t max_version = kProtocolVersionMax);

/// Human-readable request label ("summary", "history", ...) for metrics.
std::string_view request_label(const Request& request);

}  // namespace laces::serve
