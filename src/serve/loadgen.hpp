// In-repo load generator for the query server.
//
// Drives N client threads through the framed protocol at a configurable
// request mix and (optional) per-client pacing toward a target aggregate
// QPS, measuring client-observed latency. Shared by `laces bench-serve`
// and bench/bench_serve.cpp so the CLI and the CI gate run the same
// workload. The request *sequence* is deterministic per (seed, client);
// only the timing varies with the machine.
//
// When `warmup_requests_per_client` is set, run_load first replays that
// many requests per client from the same seed and discards every sample,
// so the measured round starts against a warm response cache and its
// percentiles are steady-state — warm-up latencies never pollute the
// reported distribution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace laces::serve {

struct LoadGenConfig {
  std::size_t clients = 4;
  std::size_t requests_per_client = 2000;
  /// Per-client requests issued (and discarded) before the measured round.
  std::size_t warmup_requests_per_client = 0;
  /// Aggregate target rate; 0 means closed-loop (each client back-to-back).
  double target_qps = 0.0;
  std::uint64_t seed = 1;
  /// Relative request-mix weights.
  unsigned weight_summary = 4;
  unsigned weight_stability = 2;
  unsigned weight_history = 8;
  unsigned weight_intermittent = 1;
  unsigned weight_export_day = 1;
};

/// Latency breakdown for one request class (request_label() name).
struct ClassLatency {
  std::string name;
  std::uint64_t requests = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

struct LoadGenReport {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;  // non-shed error responses
  double elapsed_s = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double shed_rate = 0.0;
  /// Per-request-class percentiles, in first-issued order.
  std::vector<ClassLatency> classes;

  /// BENCH_serve.json body (scripts/check_bench.py schema).
  std::string to_json() const;
  /// Human-readable one-screen summary.
  std::string describe() const;
};

/// Runs the workload against `server`. `prefixes` seeds history requests
/// (typically a day's published prefixes); `days` seeds export requests.
/// Both may be empty, in which case those mix weights are dropped.
LoadGenReport run_load(Server& server,
                       const std::vector<net::Prefix>& prefixes,
                       const std::vector<std::uint32_t>& days,
                       const LoadGenConfig& config);

}  // namespace laces::serve
