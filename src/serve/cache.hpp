// Sharded, thread-safe response LRU cache.
//
// Keys are the canonical request bytes (serve/protocol.hpp), values the
// encoded response bodies, so a cache hit is a pure byte copy — no query
// re-execution, no re-encoding. The key's FNV-1a hash picks a shard; each
// shard is an independently locked exact LRU, so concurrent lookups of
// different requests contend only 1/shards of the time. Hit, miss, insert
// and eviction counts are exported through laces_obs
// (laces_serve_response_cache_*_total).
//
// Each shard also carries a separately bounded *negative* LRU for typed
// misses (e.g. the kUnknownDay error body for an absent day): repeated
// lookups of something the archive does not have were previously a miss
// every time, re-executing the query just to rediscover the absence. The
// arena is separate so an attacker enumerating absent days can evict at
// most negative entries, never real responses, and the whole arena can be
// invalidated at once when an archive day commits and absences change.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace laces::serve {

class ResponseCache {
 public:
  /// `shards` independent LRUs of `entries_per_shard` each, plus a
  /// negative arena of `negative_entries_per_shard` per shard. A zero for
  /// shards or entries is bumped to one; zero negative entries disables
  /// the negative arena.
  ResponseCache(std::size_t shards, std::size_t entries_per_shard,
                std::size_t negative_entries_per_shard = 0);

  /// The cached response body, or nullptr on a miss. Checks the positive
  /// arena first, then the negative one (a cached typed miss is still an
  /// answer — the caller cannot tell and does not need to).
  std::shared_ptr<const std::vector<std::uint8_t>> lookup(
      std::span<const std::uint8_t> key);

  /// Inserts (or refreshes) the response body for `key`, evicting the
  /// shard's least-recently-used entry when the shard is full.
  void insert(std::span<const std::uint8_t> key,
              std::shared_ptr<const std::vector<std::uint8_t>> value);

  /// Inserts a typed-miss body (e.g. an encoded kUnknownDay error) into
  /// the shard's negative arena. No-op when the arena is disabled.
  void insert_negative(std::span<const std::uint8_t> key,
                       std::shared_ptr<const std::vector<std::uint8_t>> value);

  /// Drops every negative entry — call when the set of absences changes
  /// (an archive day committed).
  void invalidate_negative();

  /// Drops everything, both arenas (mesh relays on a feed day roll).
  void clear();

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t negative_hits() const {
    return negative_hits_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t negative_size() const;
  std::size_t shard_count() const { return shards_.size(); }

 private:
  using Key = std::string;  // canonical request bytes
  using Lru =
      std::list<std::pair<Key, std::shared_ptr<const std::vector<std::uint8_t>>>>;
  struct Shard {
    std::mutex mutex;
    /// Most-recent at front; evict from the back.
    Lru lru;
    std::unordered_map<std::string_view, Lru::iterator> by_key;
    /// Negative arena: same shape, independent bound.
    Lru neg_lru;
    std::unordered_map<std::string_view, Lru::iterator> neg_by_key;
  };

  Shard& shard_for(std::span<const std::uint8_t> key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t entries_per_shard_;
  std::size_t negative_entries_per_shard_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> negative_hits_{0};
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* inserts_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* negative_hits_counter_ = nullptr;
  obs::Counter* negative_inserts_counter_ = nullptr;
};

}  // namespace laces::serve
