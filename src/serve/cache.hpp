// Sharded, thread-safe response LRU cache.
//
// Keys are the canonical request bytes (serve/protocol.hpp), values the
// encoded response bodies, so a cache hit is a pure byte copy — no query
// re-execution, no re-encoding. The key's FNV-1a hash picks a shard; each
// shard is an independently locked exact LRU, so concurrent lookups of
// different requests contend only 1/shards of the time. Hit, miss, insert
// and eviction counts are exported through laces_obs
// (laces_serve_response_cache_*_total).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace laces::serve {

class ResponseCache {
 public:
  /// `shards` independent LRUs of `entries_per_shard` each. A zero for
  /// either is bumped to one.
  ResponseCache(std::size_t shards, std::size_t entries_per_shard);

  /// The cached response body, or nullptr on a miss.
  std::shared_ptr<const std::vector<std::uint8_t>> lookup(
      std::span<const std::uint8_t> key);

  /// Inserts (or refreshes) the response body for `key`, evicting the
  /// shard's least-recently-used entry when the shard is full.
  void insert(std::span<const std::uint8_t> key,
              std::shared_ptr<const std::vector<std::uint8_t>> value);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }

 private:
  using Key = std::string;  // canonical request bytes
  struct Shard {
    std::mutex mutex;
    /// Most-recent at front; evict from the back.
    std::list<std::pair<Key, std::shared_ptr<const std::vector<std::uint8_t>>>>
        lru;
    std::unordered_map<std::string_view, decltype(lru)::iterator> by_key;
  };

  Shard& shard_for(std::span<const std::uint8_t> key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t entries_per_shard_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* inserts_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace laces::serve
