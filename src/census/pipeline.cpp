#include "census/pipeline.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace laces::census {

Pipeline::Pipeline(topo::SimNetwork& network, core::Session& session,
                   platform::UnicastPlatform ark_v4,
                   platform::UnicastPlatform ark_v6, PipelineConfig config)
    : network_(network),
      session_(session),
      ark_v4_(std::move(ark_v4)),
      ark_v6_(std::move(ark_v6)),
      config_(config) {
  const auto& world = network_.world();
  ping_v4_ = hitlist::build_ping_hitlist(world, net::IpVersion::kV4);
  ping_v6_ = hitlist::build_ping_hitlist(world, net::IpVersion::kV6);
  dns_v4_ = hitlist::build_dns_hitlist(world, net::IpVersion::kV4);
  dns_v6_ = hitlist::build_dns_hitlist(world, net::IpVersion::kV6);
  for (const auto& hl : {ping_v4_, ping_v6_, dns_v4_, dns_v6_}) {
    for (const auto& e : hl.entries()) {
      rep_.emplace(net::Prefix::of(e.address), e.address);
    }
  }
}

const hitlist::Hitlist& Pipeline::ping_hitlist(net::IpVersion version) const {
  return version == net::IpVersion::kV4 ? ping_v4_ : ping_v6_;
}

const hitlist::Hitlist& Pipeline::dns_hitlist(net::IpVersion version) const {
  return version == net::IpVersion::kV4 ? dns_v4_ : dns_v6_;
}

std::optional<net::IpAddress> Pipeline::representative(
    const net::Prefix& p) const {
  const auto it = rep_.find(p);
  if (it == rep_.end()) return std::nullopt;
  return it->second;
}

void Pipeline::extend_at_list(const std::vector<net::Prefix>& prefixes) {
  for (const auto& p : prefixes) {
    if (at_set_.insert(p).second) at_list_.push_back(p);
  }
}

void Pipeline::flag_partial_anycast(const std::vector<net::Prefix>& prefixes) {
  partial_.insert(prefixes.begin(), prefixes.end());
}

DailyCensus Pipeline::run_day(std::uint32_t day) {
  network_.set_day(day);
  DailyCensus census;
  census.day = day;
  if (config_.ipv4) run_family(census, net::IpVersion::kV4, day);
  if (config_.ipv6) run_family(census, net::IpVersion::kV6, day);
  // Feed GCD-confirmed prefixes back into the persistent AT list.
  extend_at_list(census.gcd_confirmed_prefixes());
  for (auto& [prefix, rec] : census.records) {
    rec.partial_anycast = partial_.contains(prefix);
  }
  return census;
}

void Pipeline::run_family(DailyCensus& census, net::IpVersion version,
                          std::uint32_t day) {
  struct Stage {
    net::Protocol protocol;
    const hitlist::Hitlist* hitlist;
    bool enabled;
  };
  const Stage stages[] = {
      {net::Protocol::kIcmp, &ping_hitlist(version), config_.icmp},
      {net::Protocol::kTcp, &ping_hitlist(version), config_.tcp},
      {net::Protocol::kUdpDns, &dns_hitlist(version), config_.dns},
  };

  // --- Stage 1: anycast-based censuses per protocol ---
  std::unordered_set<net::Prefix, net::PrefixHash> day_ats;
  for (const auto& stage : stages) {
    if (!stage.enabled || stage.hitlist->empty()) continue;
    core::MeasurementSpec spec;
    spec.id = next_measurement_++;
    spec.protocol = stage.protocol;
    spec.version = version;
    spec.mode = core::ProbeMode::kAnycast;
    spec.worker_offset = config_.worker_offset;
    spec.targets_per_second = config_.targets_per_second;

    const auto addrs = stage.hitlist->addresses();
    const auto results = session_.run(spec, addrs);
    census.anycast_probes_sent += results.probes_sent;
    const auto classification = core::classify_anycast(results, addrs);
    for (const auto& [prefix, obs] : classification) {
      auto& rec = census.records[prefix];
      rec.prefix = prefix;
      rec.anycast_based[stage.protocol] = ProtocolObservation{
          obs.verdict, static_cast<std::uint32_t>(obs.vp_count())};
      if (obs.verdict == core::Verdict::kAnycast) day_ats.insert(prefix);
    }
  }

  // --- Stage 2: assemble the AT list (today's + persistent feedback) ---
  std::vector<net::Prefix> ats(day_ats.begin(), day_ats.end());
  for (const auto& p : at_list_) {
    if (p.version() == version && !day_ats.contains(p)) ats.push_back(p);
  }
  std::sort(ats.begin(), ats.end());
  for (const auto& p : ats) {
    if (p.version() == version) census.anycast_targets.push_back(p);
  }

  // --- Stage 3: GCD from Ark toward the ATs only (two orders of magnitude
  // cheaper than a full-hitlist GCD run, §4.2.2) ---
  std::vector<net::IpAddress> gcd_targets;
  gcd_targets.reserve(ats.size());
  for (const auto& p : ats) {
    if (const auto addr = representative(p)) gcd_targets.push_back(*addr);
  }
  const auto& ark = version == net::IpVersion::kV4 ? ark_v4_ : ark_v6_;
  if (!gcd_targets.empty() && !ark.vps.empty()) {
    platform::LatencyOptions opts;
    opts.protocol = config_.gcd_protocol;
    opts.targets_per_second = config_.gcd_targets_per_second;
    opts.measurement_id = next_measurement_++;
    opts.run_seed = 0xa2c0 + day + (gcd_run_counter_++ << 8);
    const auto latency =
        platform::measure_latency(network_, ark, gcd_targets, opts);
    census.gcd_probes_sent += latency.probes_sent;
    const auto analyzer = gcd::make_analyzer(ark);
    const auto gcd_cls = gcd::classify_gcd(analyzer, latency, gcd_targets);
    for (const auto& [prefix, res] : gcd_cls) {
      auto& rec = census.records[prefix];
      rec.prefix = prefix;
      rec.gcd_verdict = res.verdict;
      rec.gcd_site_count = static_cast<std::uint32_t>(res.site_count());
      rec.gcd_locations.clear();
      for (const auto& site : res.sites) {
        if (site.city) rec.gcd_locations.push_back(*site.city);
      }
    }
  }
}

}  // namespace laces::census
