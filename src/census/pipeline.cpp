#include "census/pipeline.hpp"

#include <algorithm>
#include <string>

#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace laces::census {

void Pipeline::finish_stage(obs::Span& span, obs::Histogram* duration) {
  span.end();
  duration->observe(span.duration().to_seconds());
}

void Pipeline::record_rate(obs::Gauge* configured_gauge,
                           obs::Gauge* effective_gauge, double configured,
                           double targets, SimDuration elapsed) {
  configured_gauge->set(configured);
  const double seconds = elapsed.to_seconds();
  effective_gauge->set(seconds > 0.0 ? targets / seconds : 0.0);
}

void Pipeline::register_metrics() {
  auto& registry = obs::Registry::global();
  const auto stage_hist = [&registry](const char* stage) {
    return &registry.histogram("laces_census_stage_duration_seconds",
                               obs::stage_seconds_buckets(),
                               {{"stage", stage}});
  };
  stage_census_ = stage_hist("anycast_census");
  stage_at_ = stage_hist("at_selection");
  stage_gcd_ = stage_hist("gcd");
  stage_merge_ = stage_hist("merge");
  stage_day_ = stage_hist("day");
  rate_configured_anycast_ = &registry.gauge(
      "laces_census_rate_configured_targets_per_second", {{"stage", "anycast"}});
  rate_effective_anycast_ = &registry.gauge(
      "laces_census_rate_effective_targets_per_second", {{"stage", "anycast"}});
  rate_configured_gcd_ = &registry.gauge(
      "laces_census_rate_configured_targets_per_second", {{"stage", "gcd"}});
  rate_effective_gcd_ = &registry.gauge(
      "laces_census_rate_effective_targets_per_second", {{"stage", "gcd"}});
  for (std::size_t v = 0; v < classified_anycast_.size(); ++v) {
    classified_anycast_[v] = &registry.counter(
        "laces_census_classified_total",
        {{"method", "anycast"},
         {"verdict",
          std::string(core::to_string(static_cast<core::Verdict>(v)))}});
    classified_gcd_[v] = &registry.counter(
        "laces_census_classified_total",
        {{"method", "gcd"},
         {"verdict",
          std::string(gcd::to_string(static_cast<gcd::GcdVerdict>(v)))}});
  }
  days_total_ = &registry.counter("laces_census_days_total");
  at_list_size_ = &registry.gauge("laces_census_at_list_size");
  for (const auto protocol : net::kAllProtocols) {
    targets_probed_[static_cast<std::size_t>(protocol)] = &registry.counter(
        "laces_census_targets_probed_total",
        {{"protocol", std::string(net::metric_label(protocol))}});
  }
  probes_sent_anycast_ =
      &registry.counter("laces_census_probes_sent_total", {{"stage", "anycast"}});
  probes_sent_gcd_ =
      &registry.counter("laces_census_probes_sent_total", {{"stage", "gcd"}});
  degraded_days_ = &registry.counter("laces_census_degraded_days_total");
  lost_sites_total_ = &registry.counter("laces_census_lost_sites_total");
  if (config_.ipv4) {
    anycast_targets_v4_ =
        &registry.gauge("laces_census_anycast_targets", {{"family", "v4"}});
  }
  if (config_.ipv6) {
    anycast_targets_v6_ =
        &registry.gauge("laces_census_anycast_targets", {{"family", "v6"}});
  }
}

Pipeline::Pipeline(topo::SimNetwork& network, core::Session& session,
                   platform::UnicastPlatform ark_v4,
                   platform::UnicastPlatform ark_v6, PipelineConfig config)
    : network_(network),
      session_(session),
      ark_v4_(std::move(ark_v4)),
      ark_v6_(std::move(ark_v6)),
      config_(config) {
  const auto& world = network_.world();
  ping_v4_ = hitlist::build_ping_hitlist(world, net::IpVersion::kV4);
  ping_v6_ = hitlist::build_ping_hitlist(world, net::IpVersion::kV6);
  dns_v4_ = hitlist::build_dns_hitlist(world, net::IpVersion::kV4);
  dns_v6_ = hitlist::build_dns_hitlist(world, net::IpVersion::kV6);
  for (const auto& hl : {ping_v4_, ping_v6_, dns_v4_, dns_v6_}) {
    for (const auto& e : hl.entries()) {
      rep_.emplace(net::Prefix::of(e.address), e.address);
    }
  }
  register_metrics();
}

const hitlist::Hitlist& Pipeline::ping_hitlist(net::IpVersion version) const {
  return version == net::IpVersion::kV4 ? ping_v4_ : ping_v6_;
}

const hitlist::Hitlist& Pipeline::dns_hitlist(net::IpVersion version) const {
  return version == net::IpVersion::kV4 ? dns_v4_ : dns_v6_;
}

std::optional<net::IpAddress> Pipeline::representative(
    const net::Prefix& p) const {
  const auto it = rep_.find(p);
  if (it == rep_.end()) return std::nullopt;
  return it->second;
}

void Pipeline::extend_at_list(const std::vector<net::Prefix>& prefixes) {
  for (const auto& p : prefixes) {
    if (at_set_.insert(p).second) at_list_.push_back(p);
  }
}

void Pipeline::flag_partial_anycast(const std::vector<net::Prefix>& prefixes) {
  partial_.insert(prefixes.begin(), prefixes.end());
}

PipelineState Pipeline::state() const {
  PipelineState state;
  state.at_list = at_list_;
  state.partial.assign(partial_.begin(), partial_.end());
  std::sort(state.partial.begin(), state.partial.end());
  state.next_measurement = next_measurement_;
  state.gcd_run_counter = gcd_run_counter_;
  state.canary_days = canary_.days_observed();
  state.canary_share_sums.assign(canary_.share_sums().begin(),
                                 canary_.share_sums().end());
  return state;
}

void Pipeline::restore_state(const PipelineState& state) {
  at_list_.clear();
  at_set_.clear();
  extend_at_list(state.at_list);
  partial_.clear();
  partial_.insert(state.partial.begin(), state.partial.end());
  next_measurement_ = state.next_measurement;
  gcd_run_counter_ = state.gcd_run_counter;
  std::map<net::WorkerId, double> shares(state.canary_share_sums.begin(),
                                         state.canary_share_sums.end());
  canary_.restore(state.canary_days, std::move(shares));
  at_list_size_->set(static_cast<double>(at_list_.size()));
}

DailyCensus Pipeline::run_day(std::uint32_t day) {
  obs::Tracer::global().set_clock(&network_.events());
  obs::Span day_span("census.day");
  day_span.set_attr("day", std::to_string(day));

  network_.set_day(day);
  DailyCensus census;
  census.day = day;
  if (config_.canary) run_canary(census);
  if (config_.ipv4) run_family(census, net::IpVersion::kV4, day);
  if (config_.ipv6) run_family(census, net::IpVersion::kV6, day);

  {
    obs::Span merge_span("census.merge");
    // Feed GCD-confirmed prefixes back into the persistent AT list.
    extend_at_list(census.gcd_confirmed_prefixes());
    for (auto& [prefix, rec] : census.records) {
      rec.partial_anycast = partial_.contains(prefix);
    }
    for (const auto& [prefix, rec] : census.records) {
      for (const auto& [proto, obs_rec] : rec.anycast_based) {
        (void)proto;
        classified_anycast_[static_cast<std::size_t>(obs_rec.verdict)]->add();
      }
      if (rec.gcd_verdict) {
        classified_gcd_[static_cast<std::size_t>(*rec.gcd_verdict)]->add();
      }
    }
    finish_stage(merge_span, stage_merge_);
  }

  days_total_->add();
  at_list_size_->set(static_cast<double>(at_list_.size()));
  if (census.degraded) {
    degraded_days_->add();
    day_span.set_attr("degraded", "true");
    obs::FlightRecorder::global().record(
        obs::FrEvent::kDayDegraded, 0, day,
        static_cast<std::uint32_t>(census.lost_sites));
  } else {
    obs::FlightRecorder::global().record(
        obs::FrEvent::kDayComplete, 0, day,
        static_cast<std::uint32_t>(census.records.size()));
  }
  lost_sites_total_->add(census.lost_sites);
  finish_stage(day_span, stage_day_);
  return census;
}

SimDuration Pipeline::deadline_for(double rate, std::size_t targets) const {
  const double stream_s =
      rate > 0.0 ? static_cast<double>(targets) / rate : 0.0;
  const std::size_t workers = session_.worker_count();
  const double fanout_s =
      config_.worker_offset.to_seconds() *
      static_cast<double>(workers > 0 ? workers - 1 : 0);
  // Streaming + staggered starts + response drain; doubled, plus margin.
  return SimDuration::from_seconds(2.0 * (stream_s + fanout_s + 4.0) + 30.0);
}

void Pipeline::run_canary(DailyCensus& census) {
  const auto& hl = config_.ipv4 ? ping_v4_ : ping_v6_;
  auto addrs = hl.addresses();
  if (addrs.size() > config_.canary_targets) {
    addrs.resize(config_.canary_targets);
  }
  if (addrs.empty()) return;

  obs::Span canary_span("census.canary");
  core::MeasurementSpec spec;
  spec.id = next_measurement_++;
  spec.protocol = net::Protocol::kIcmp;
  spec.version = config_.ipv4 ? net::IpVersion::kV4 : net::IpVersion::kV6;
  spec.mode = core::ProbeMode::kAnycast;
  spec.worker_offset = config_.worker_offset;
  spec.targets_per_second = config_.targets_per_second;
  spec.deadline = deadline_for(config_.targets_per_second, addrs.size());

  const auto results = session_.run(spec, addrs);
  census.anycast_probes_sent += results.probes_sent;
  census.degraded |= results.status != core::RunStatus::kCompleted;
  census.lost_sites = std::max(census.lost_sites, results.workers_lost);

  const auto alarms = canary_.observe(results);
  census.canary_alarms += static_cast<std::uint32_t>(alarms.size());
  census.degraded |= !alarms.empty();
  canary_span.end();
}

void Pipeline::run_family(DailyCensus& census, net::IpVersion version,
                          std::uint32_t day) {
  struct Stage {
    net::Protocol protocol;
    const hitlist::Hitlist* hitlist;
    bool enabled;
  };
  const Stage stages[] = {
      {net::Protocol::kIcmp, &ping_hitlist(version), config_.icmp},
      {net::Protocol::kTcp, &ping_hitlist(version), config_.tcp},
      {net::Protocol::kUdpDns, &dns_hitlist(version), config_.dns},
  };

  const char* family =
      version == net::IpVersion::kV4 ? "v4" : "v6";

  // --- Stage 1: anycast-based censuses per protocol ---
  obs::Span census_span("census.anycast_census");
  census_span.set_attr("family", family);
  std::uint64_t family_targets = 0;
  std::uint64_t family_probes = 0;
  std::unordered_set<net::Prefix, net::PrefixHash> day_ats;
  for (const auto& stage : stages) {
    if (!stage.enabled || stage.hitlist->empty()) continue;
    core::MeasurementSpec spec;
    spec.id = next_measurement_++;
    spec.protocol = stage.protocol;
    spec.version = version;
    spec.mode = core::ProbeMode::kAnycast;
    spec.worker_offset = config_.worker_offset;
    spec.targets_per_second = config_.targets_per_second;

    const auto addrs = stage.hitlist->addresses();
    spec.deadline = deadline_for(config_.targets_per_second, addrs.size());
    targets_probed_[static_cast<std::size_t>(stage.protocol)]->add(
        addrs.size());
    family_targets += addrs.size();

    const auto results = session_.run(spec, addrs);
    census.anycast_probes_sent += results.probes_sent;
    family_probes += results.probes_sent;
    census.degraded |= results.status != core::RunStatus::kCompleted;
    census.lost_sites = std::max(census.lost_sites, results.workers_lost);
    const auto classification = core::classify_anycast(results, addrs);
    for (const auto& [prefix, obs] : classification) {
      auto& rec = census.records[prefix];
      rec.prefix = prefix;
      rec.anycast_based[stage.protocol] = ProtocolObservation{
          obs.verdict, static_cast<std::uint32_t>(obs.vp_count())};
      if (obs.verdict == core::Verdict::kAnycast) day_ats.insert(prefix);
    }
  }
  probes_sent_anycast_->add(family_probes);
  record_rate(rate_configured_anycast_, rate_effective_anycast_,
              config_.targets_per_second, static_cast<double>(family_targets),
              census_span.duration());
  finish_stage(census_span, stage_census_);

  // --- Stage 2: assemble the AT list (today's + persistent feedback) ---
  obs::Span at_span("census.at_selection");
  at_span.set_attr("family", family);
  std::vector<net::Prefix> ats(day_ats.begin(), day_ats.end());
  for (const auto& p : at_list_) {
    if (p.version() == version && !day_ats.contains(p)) ats.push_back(p);
  }
  std::sort(ats.begin(), ats.end());
  for (const auto& p : ats) {
    if (p.version() == version) census.anycast_targets.push_back(p);
  }
  (version == net::IpVersion::kV4 ? anycast_targets_v4_ : anycast_targets_v6_)
      ->set(static_cast<double>(ats.size()));
  finish_stage(at_span, stage_at_);

  // --- Stage 3: GCD from Ark toward the ATs only (two orders of magnitude
  // cheaper than a full-hitlist GCD run, §4.2.2) ---
  obs::Span gcd_span("census.gcd");
  gcd_span.set_attr("family", family);
  std::vector<net::IpAddress> gcd_targets;
  gcd_targets.reserve(ats.size());
  for (const auto& p : ats) {
    if (const auto addr = representative(p)) gcd_targets.push_back(*addr);
  }
  const auto& ark = version == net::IpVersion::kV4 ? ark_v4_ : ark_v6_;
  if (!gcd_targets.empty() && !ark.vps.empty()) {
    platform::LatencyOptions opts;
    opts.protocol = config_.gcd_protocol;
    opts.targets_per_second = config_.gcd_targets_per_second;
    opts.measurement_id = next_measurement_++;
    opts.run_seed = 0xa2c0 + day + (gcd_run_counter_++ << 8);
    const auto latency =
        platform::measure_latency(network_, ark, gcd_targets, opts);
    census.gcd_probes_sent += latency.probes_sent;
    probes_sent_gcd_->add(latency.probes_sent);
    const auto analyzer = gcd::make_analyzer(ark);
    const auto gcd_cls = gcd::classify_gcd(analyzer, latency, gcd_targets);
    for (const auto& [prefix, res] : gcd_cls) {
      auto& rec = census.records[prefix];
      rec.prefix = prefix;
      rec.gcd_verdict = res.verdict;
      rec.gcd_site_count = static_cast<std::uint32_t>(res.site_count());
      rec.gcd_locations.clear();
      for (const auto& site : res.sites) {
        if (site.city) rec.gcd_locations.push_back(*site.city);
      }
    }
  }
  record_rate(rate_configured_gcd_, rate_effective_gcd_,
              config_.gcd_targets_per_second,
              static_cast<double>(gcd_targets.size()), gcd_span.duration());
  finish_stage(gcd_span, stage_gcd_);
}

}  // namespace laces::census
