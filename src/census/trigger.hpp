// Trigger-based detection of temporary anycast (paper §6 future work:
// "trigger-based detection of temporary anycast — e.g., from BGP route
// collectors").
//
// A daily census misses anycast that lives for hours (Imperva-style
// on-demand DDoS mitigation, §5.6/§5.7). Route collectors see those
// prefixes (re)announced, though: this engine consumes a BGP-update feed,
// runs a targeted anycast-based measurement toward just the updated
// prefixes, and GCD-confirms the hits — catching short-lived anycast at a
// probing cost proportional to the day's churn, not the hitlist.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/session.hpp"
#include "gcd/classify.hpp"
#include "platform/latency.hpp"
#include "topo/world.hpp"

namespace laces::census {

struct TriggerScanResult {
  /// Prefixes re-measured because of BGP updates.
  std::vector<net::Prefix> measured;
  /// Of those, confirmed anycast by the anycast-based stage.
  std::vector<net::Prefix> anycast_based;
  /// Of those, confirmed by GCD.
  std::vector<net::Prefix> gcd_confirmed;
  std::uint64_t probes_sent = 0;
};

class TriggerEngine {
 public:
  /// `representatives` maps census prefixes to their probe address (from
  /// the hitlists).
  TriggerEngine(core::Session& session, platform::UnicastPlatform gcd_vps,
                std::unordered_map<net::Prefix, net::IpAddress,
                                   net::PrefixHash>
                    representatives);

  /// React to a day's BGP updates: measure every announced prefix.
  /// Withdrawn prefixes are recorded but not probed (nothing to confirm).
  TriggerScanResult react(
      const std::vector<topo::World::BgpUpdate>& updates);

 private:
  core::Session& session_;
  platform::UnicastPlatform gcd_vps_;
  std::unordered_map<net::Prefix, net::IpAddress, net::PrefixHash> reps_;
  net::MeasurementId next_id_ = 0x7716;
};

}  // namespace laces::census
