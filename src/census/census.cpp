#include "census/census.hpp"

#include <algorithm>

namespace laces::census {

bool PrefixRecord::anycast_based_detected() const {
  return std::any_of(anycast_based.begin(), anycast_based.end(),
                     [](const auto& kv) {
                       return kv.second.verdict == core::Verdict::kAnycast;
                     });
}

std::uint32_t PrefixRecord::max_vp_count() const {
  std::uint32_t best = 0;
  for (const auto& [proto, obs] : anycast_based) {
    best = std::max(best, obs.vp_count);
  }
  return best;
}

const PrefixRecord* DailyCensus::find(const net::Prefix& prefix) const {
  const auto it = records.find(prefix);
  return it == records.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> DailyCensus::published_prefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, rec] : records) {
    if (rec.anycast_based_detected() || rec.gcd_confirmed()) {
      out.push_back(prefix);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Prefix> DailyCensus::gcd_confirmed_prefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, rec] : records) {
    if (rec.gcd_confirmed()) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace laces::census
