// Longitudinal census store and precision statistics (paper §5.1.6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "census/census.hpp"

namespace laces::census {

/// Stability statistics over a sequence of daily censuses. `days` counts
/// only healthy days: degraded censuses are stored but never charged
/// against a prefix's every-day streak (a vanished site must not turn a
/// stable anycast prefix "intermittent").
struct StabilityStats {
  std::size_t days = 0;
  /// Degraded days excluded from the stability denominators.
  std::size_t degraded_days = 0;
  /// Union of prefixes ever detected by the method.
  std::size_t union_size = 0;
  /// Prefixes detected on every single day.
  std::size_t every_day = 0;
  /// Prefixes detected only on some days.
  std::size_t intermittent() const { return union_size - every_day; }
  /// Mean prefixes detected per day.
  double daily_mean = 0.0;

  bool operator==(const StabilityStats&) const = default;
};

/// Serializable state of a LongitudinalStore — what laces_store checkpoints
/// so a killed census series resumes without replaying archived days.
/// Entries are (prefix, detection-day count), sorted by prefix so the
/// encoding is deterministic.
struct LongitudinalSnapshot {
  std::size_t days = 0;
  std::size_t degraded_days = 0;
  std::uint64_t anycast_total = 0;
  std::uint64_t gcd_total = 0;
  std::size_t anycast_every_day = 0;
  std::size_t gcd_every_day = 0;
  std::vector<std::pair<net::Prefix, std::uint32_t>> anycast_counts;
  std::vector<std::pair<net::Prefix, std::uint32_t>> gcd_counts;

  bool operator==(const LongitudinalSnapshot&) const = default;
};

/// Accumulates daily censuses and answers longitudinal queries.
///
/// Stability statistics are maintained *incrementally*: add() updates the
/// every-day streak count and per-method totals in one pass over the day's
/// detections, so stability() is O(1) instead of rescanning the union per
/// query (56-day series ask for stability after every day).
class LongitudinalStore {
 public:
  void add(const DailyCensus& census);

  /// Healthy (non-degraded) days accumulated.
  std::size_t days() const { return days_; }
  /// Degraded days seen (tracked, excluded from stability).
  std::size_t degraded_days() const { return degraded_days_; }

  /// Stability of the anycast-based detections (O(1), incremental).
  StabilityStats anycast_based_stability() const;
  /// Stability of the GCD-confirmed detections (O(1), incremental).
  StabilityStats gcd_stability() const;

  /// Reference implementations that rescan the per-prefix count maps.
  /// Kept as the ground truth the incremental counters are tested against
  /// (and used by archive verification).
  StabilityStats recompute_anycast_based_stability() const;
  StabilityStats recompute_gcd_stability() const;

  /// Days on which `prefix` was GCD-confirmed.
  std::size_t gcd_days(const net::Prefix& prefix) const;
  /// Days on which `prefix` was anycast-based detected.
  std::size_t anycast_based_days(const net::Prefix& prefix) const;

  /// Prefixes detected on some but not all days, per method (sorted).
  std::vector<net::Prefix> intermittent_anycast_based() const;
  std::vector<net::Prefix> intermittent_gcd() const;

  /// Denominator self-check (the scenario fuzzer's census invariant):
  /// verifies the O(1) incremental stability counters against the
  /// recompute_* ground truth and basic accounting sanity (every-day
  /// streaks bounded by the union, per-prefix counts bounded by healthy
  /// days, totals equal to the count sums — degraded days must never leak
  /// into any denominator). Returns nullopt when consistent, else a
  /// one-line description of the first violation.
  std::optional<std::string> check_invariants() const;

  /// Deterministic (sorted) dump of the full state, for checkpointing.
  LongitudinalSnapshot snapshot() const;
  /// Reconstructs a store from a snapshot; inverse of snapshot().
  static LongitudinalStore from_snapshot(const LongitudinalSnapshot& snap);

 private:
  using CountMap =
      std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>;

  StabilityStats stability(const CountMap& counts, std::uint64_t total,
                           std::size_t every_day) const;
  StabilityStats recompute(const CountMap& counts, std::uint64_t total) const;

  std::size_t days_ = 0;
  std::size_t degraded_days_ = 0;
  CountMap anycast_days_;
  CountMap gcd_days_;
  std::uint64_t anycast_total_ = 0;
  std::uint64_t gcd_total_ = 0;
  /// Prefixes whose count equals days_ (detected on every healthy day).
  std::size_t anycast_every_day_ = 0;
  std::size_t gcd_every_day_ = 0;
};

}  // namespace laces::census
