// Longitudinal census store and precision statistics (paper §5.1.6).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "census/census.hpp"

namespace laces::census {

/// Stability statistics over a sequence of daily censuses. `days` counts
/// only healthy days: degraded censuses are stored but never charged
/// against a prefix's every-day streak (a vanished site must not turn a
/// stable anycast prefix "intermittent").
struct StabilityStats {
  std::size_t days = 0;
  /// Degraded days excluded from the stability denominators.
  std::size_t degraded_days = 0;
  /// Union of prefixes ever detected by the method.
  std::size_t union_size = 0;
  /// Prefixes detected on every single day.
  std::size_t every_day = 0;
  /// Prefixes detected only on some days.
  std::size_t intermittent() const { return union_size - every_day; }
  /// Mean prefixes detected per day.
  double daily_mean = 0.0;
};

/// Accumulates daily censuses and answers longitudinal queries.
class LongitudinalStore {
 public:
  void add(const DailyCensus& census);

  /// Healthy (non-degraded) days accumulated.
  std::size_t days() const { return days_; }
  /// Degraded days seen (tracked, excluded from stability).
  std::size_t degraded_days() const { return degraded_days_; }

  /// Stability of the anycast-based detections.
  StabilityStats anycast_based_stability() const;
  /// Stability of the GCD-confirmed detections.
  StabilityStats gcd_stability() const;

  /// Days on which `prefix` was GCD-confirmed.
  std::size_t gcd_days(const net::Prefix& prefix) const;

  /// Prefixes detected on some but not all days, per method (sorted).
  std::vector<net::Prefix> intermittent_anycast_based() const;
  std::vector<net::Prefix> intermittent_gcd() const;

 private:
  StabilityStats stability(
      const std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>&
          counts,
      std::size_t total) const;

  std::size_t days_ = 0;
  std::size_t degraded_days_ = 0;
  std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>
      anycast_days_;
  std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash> gcd_days_;
  std::size_t anycast_total_ = 0;
  std::size_t gcd_total_ = 0;
};

}  // namespace laces::census
