#include "census/trigger.hpp"

#include <algorithm>

#include "core/classify.hpp"

namespace laces::census {

TriggerEngine::TriggerEngine(
    core::Session& session, platform::UnicastPlatform gcd_vps,
    std::unordered_map<net::Prefix, net::IpAddress, net::PrefixHash>
        representatives)
    : session_(session),
      gcd_vps_(std::move(gcd_vps)),
      reps_(std::move(representatives)) {}

TriggerScanResult TriggerEngine::react(
    const std::vector<topo::World::BgpUpdate>& updates) {
  TriggerScanResult out;

  std::vector<net::IpAddress> targets;
  for (const auto& update : updates) {
    if (!update.announced) continue;  // withdrawals need no probing
    const auto it = reps_.find(update.prefix);
    if (it == reps_.end()) continue;  // not in our hitlists
    out.measured.push_back(update.prefix);
    targets.push_back(it->second);
  }
  std::sort(out.measured.begin(), out.measured.end());
  if (targets.empty()) return out;

  // Targeted anycast-based measurement: tiny hitlist, full deployment.
  core::MeasurementSpec spec;
  spec.id = next_id_++;
  spec.targets_per_second = 1000;
  const auto results = session_.run(spec, targets);
  out.probes_sent += results.probes_sent;
  const auto classification = core::classify_anycast(results, targets);
  out.anycast_based = core::anycast_targets(classification);

  // GCD confirmation of the hits only.
  std::vector<net::IpAddress> gcd_targets;
  for (const auto& prefix : out.anycast_based) {
    gcd_targets.push_back(reps_.at(prefix));
  }
  if (!gcd_targets.empty() && !gcd_vps_.vps.empty()) {
    platform::LatencyOptions opts;
    opts.measurement_id = next_id_++;
    const auto latency = platform::measure_latency(session_.network(),
                                                   gcd_vps_, gcd_targets, opts);
    out.probes_sent += latency.probes_sent;
    const auto analyzer = gcd::make_analyzer(gcd_vps_);
    out.gcd_confirmed = gcd::gcd_anycast_prefixes(
        gcd::classify_gcd(analyzer, latency, gcd_targets));
  }
  return out;
}

}  // namespace laces::census
