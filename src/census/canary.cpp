#include "census/canary.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace laces::census {

std::map<net::WorkerId, double> CanaryMonitor::share_of(
    const core::MeasurementResults& results) const {
  std::map<net::WorkerId, std::size_t> counts;
  for (const auto& rec : results.records) ++counts[rec.rx_worker];
  std::map<net::WorkerId, double> shares;
  if (results.records.empty()) return shares;
  const double total = static_cast<double>(results.records.size());
  for (const auto& [worker, count] : counts) {
    shares[worker] = static_cast<double>(count) / total;
  }
  return shares;
}

double CanaryMonitor::baseline_share(net::WorkerId worker) const {
  if (days_ == 0) return 0.0;
  const auto it = share_sums_.find(worker);
  if (it == share_sums_.end()) return 0.0;
  return it->second / static_cast<double>(days_);
}

std::vector<CanaryAlarm> CanaryMonitor::observe(
    const core::MeasurementResults& results) {
  const auto today = share_of(results);
  std::vector<CanaryAlarm> alarms;

  if (days_ > 0) {
    for (const auto& [worker, sum] : share_sums_) {
      const double baseline = sum / static_cast<double>(days_);
      if (baseline < min_baseline_share_) continue;
      const auto it = today.find(worker);
      const double now = it == today.end() ? 0.0 : it->second;
      if (now < baseline * (1.0 - alarm_drop_)) {
        alarms.push_back(CanaryAlarm{worker, baseline, now});
      }
    }
  }

  // Surface every alarm in the metrics registry so run reports can render
  // a per-day alarm table without re-plumbing the pipeline.
  auto& registry = obs::Registry::global();
  if (!alarms.empty()) {
    registry.counter("laces_canary_alarms_total").add(alarms.size());
    const std::string day_label = std::to_string(days_ + 1);
    for (const auto& alarm : alarms) {
      registry
          .gauge("laces_canary_alarm_share",
                 {{"day", day_label},
                  {"share", "baseline"},
                  {"worker", std::to_string(alarm.worker)}})
          .set(alarm.baseline_share);
      registry
          .gauge("laces_canary_alarm_share",
                 {{"day", day_label},
                  {"share", "today"},
                  {"worker", std::to_string(alarm.worker)}})
          .set(alarm.today_share);
    }
  }

  // Fold today into the baseline (alarmed days included: a persistent
  // outage alarms once per day until the baseline adapts).
  ++days_;
  for (const auto& [worker, share] : today) {
    share_sums_[worker] += share;
  }
  return alarms;
}

}  // namespace laces::census
