// Daily census data model (paper §4.2.4).
//
// For each prefix the census independently records the anycast-based
// verdict per protocol and the GCD verdict (R1: confidence is conveyed by
// listing both), the site estimates of each method, GCD geolocations, and
// the partial-anycast flag.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/classify.hpp"
#include "gcd/igreedy.hpp"
#include "net/address.hpp"
#include "net/protocol.hpp"

namespace laces::census {

/// Anycast-based observation for one protocol.
struct ProtocolObservation {
  core::Verdict verdict = core::Verdict::kUnresponsive;
  std::uint32_t vp_count = 0;  // receiving VPs = anycast-based site estimate

  bool operator==(const ProtocolObservation&) const = default;
};

/// Everything the census publishes about one prefix on one day.
struct PrefixRecord {
  net::Prefix prefix;
  std::map<net::Protocol, ProtocolObservation> anycast_based;
  std::optional<gcd::GcdVerdict> gcd_verdict;
  std::uint32_t gcd_site_count = 0;
  std::vector<geo::CityId> gcd_locations;
  bool partial_anycast = false;

  /// Anycast according to the anycast-based stage under any protocol.
  bool anycast_based_detected() const;
  /// Anycast according to the GCD stage.
  bool gcd_confirmed() const {
    return gcd_verdict && *gcd_verdict == gcd::GcdVerdict::kAnycast;
  }
  std::uint32_t max_vp_count() const;

  bool operator==(const PrefixRecord&) const = default;
};

/// One day's census output plus cost accounting.
struct DailyCensus {
  std::uint32_t day = 0;
  std::unordered_map<net::Prefix, PrefixRecord, net::PrefixHash> records;
  /// The candidate anycast-target list fed to the GCD stage (Figure 3).
  std::vector<net::Prefix> anycast_targets;
  std::uint64_t anycast_probes_sent = 0;
  std::uint64_t gcd_probes_sent = 0;
  /// Robustness bookkeeping: a day is degraded when any anycast-stage
  /// measurement lost workers, blew its deadline, or tripped the canary.
  /// Degraded days are published but excluded from longitudinal stability.
  bool degraded = false;
  /// Max workers lost across the day's anycast-stage measurements.
  std::uint16_t lost_sites = 0;
  /// Canary alarms raised on this day (when canary monitoring is enabled).
  std::uint32_t canary_alarms = 0;

  const PrefixRecord* find(const net::Prefix& prefix) const;
  bool operator==(const DailyCensus&) const = default;
  /// Prefixes anycast by either method — what gets published.
  std::vector<net::Prefix> published_prefixes() const;
  std::vector<net::Prefix> gcd_confirmed_prefixes() const;
};

}  // namespace laces::census
