#include "census/longitudinal.hpp"

#include <algorithm>

namespace laces::census {

void LongitudinalStore::add(const DailyCensus& census) {
  if (census.degraded) {
    // A degraded day under-observes the deployment (lost sites deflate VP
    // counts); folding it in would punish genuinely stable prefixes.
    ++degraded_days_;
    return;
  }
  // Incremental every-day maintenance: after this day, a prefix holds a
  // full streak iff it is detected today AND held a full streak over the
  // previous days_ days (count == days_ before the increment; new prefixes
  // on day one enter with count 0 == days_ 0).
  std::size_t anycast_streak = 0;
  std::size_t gcd_streak = 0;
  for (const auto& [prefix, rec] : census.records) {
    if (rec.anycast_based_detected()) {
      auto& count = anycast_days_[prefix];
      if (count == days_) ++anycast_streak;
      ++count;
      ++anycast_total_;
    }
    if (rec.gcd_confirmed()) {
      auto& count = gcd_days_[prefix];
      if (count == days_) ++gcd_streak;
      ++count;
      ++gcd_total_;
    }
  }
  ++days_;
  anycast_every_day_ = anycast_streak;
  gcd_every_day_ = gcd_streak;
}

StabilityStats LongitudinalStore::stability(const CountMap& counts,
                                            std::uint64_t total,
                                            std::size_t every_day) const {
  StabilityStats stats;
  stats.days = days_;
  stats.degraded_days = degraded_days_;
  stats.union_size = counts.size();
  stats.every_day = every_day;
  stats.daily_mean =
      days_ == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(days_);
  return stats;
}

StabilityStats LongitudinalStore::recompute(const CountMap& counts,
                                            std::uint64_t total) const {
  std::size_t every_day = 0;
  for (const auto& [prefix, n] : counts) {
    if (n == days_) ++every_day;
  }
  return stability(counts, total, every_day);
}

StabilityStats LongitudinalStore::anycast_based_stability() const {
  return stability(anycast_days_, anycast_total_, anycast_every_day_);
}

StabilityStats LongitudinalStore::gcd_stability() const {
  return stability(gcd_days_, gcd_total_, gcd_every_day_);
}

StabilityStats LongitudinalStore::recompute_anycast_based_stability() const {
  return recompute(anycast_days_, anycast_total_);
}

StabilityStats LongitudinalStore::recompute_gcd_stability() const {
  return recompute(gcd_days_, gcd_total_);
}

std::size_t LongitudinalStore::gcd_days(const net::Prefix& prefix) const {
  const auto it = gcd_days_.find(prefix);
  return it == gcd_days_.end() ? 0 : it->second;
}

std::size_t LongitudinalStore::anycast_based_days(
    const net::Prefix& prefix) const {
  const auto it = anycast_days_.find(prefix);
  return it == anycast_days_.end() ? 0 : it->second;
}

namespace {

std::vector<net::Prefix> intermittent_of(
    const std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>&
        counts,
    std::size_t days) {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, n] : counts) {
    if (n < days) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<net::Prefix, std::uint32_t>> sorted_counts(
    const std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>&
        counts) {
  std::vector<std::pair<net::Prefix, std::uint32_t>> out(counts.begin(),
                                                         counts.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<net::Prefix> LongitudinalStore::intermittent_anycast_based()
    const {
  return intermittent_of(anycast_days_, days_);
}

std::vector<net::Prefix> LongitudinalStore::intermittent_gcd() const {
  return intermittent_of(gcd_days_, days_);
}

std::optional<std::string> LongitudinalStore::check_invariants() const {
  const auto check = [this](const char* method, const CountMap& counts,
                            std::uint64_t total, std::size_t every_day,
                            const StabilityStats& incremental,
                            const StabilityStats& truth)
      -> std::optional<std::string> {
    if (incremental != truth) {
      return std::string(method) +
             ": incremental stability diverged from recompute (every_day " +
             std::to_string(incremental.every_day) + " vs " +
             std::to_string(truth.every_day) + ")";
    }
    if (every_day > counts.size()) {
      return std::string(method) + ": every_day " +
             std::to_string(every_day) + " exceeds union " +
             std::to_string(counts.size());
    }
    std::uint64_t sum = 0;
    for (const auto& [prefix, n] : counts) {
      if (n > days_) {
        return std::string(method) + ": prefix counted " + std::to_string(n) +
               " times over " + std::to_string(days_) +
               " healthy days (degraded day leaked into a denominator)";
      }
      sum += n;
    }
    if (sum != total) {
      return std::string(method) + ": total " + std::to_string(total) +
             " != per-prefix sum " + std::to_string(sum);
    }
    if (days_ == 0 && !counts.empty()) {
      return std::string(method) + ": detections recorded with zero healthy "
                                   "days";
    }
    return std::nullopt;
  };

  if (auto bad = check("anycast", anycast_days_, anycast_total_,
                       anycast_every_day_, anycast_based_stability(),
                       recompute_anycast_based_stability())) {
    return bad;
  }
  return check("gcd", gcd_days_, gcd_total_, gcd_every_day_, gcd_stability(),
               recompute_gcd_stability());
}

LongitudinalSnapshot LongitudinalStore::snapshot() const {
  LongitudinalSnapshot snap;
  snap.days = days_;
  snap.degraded_days = degraded_days_;
  snap.anycast_total = anycast_total_;
  snap.gcd_total = gcd_total_;
  snap.anycast_every_day = anycast_every_day_;
  snap.gcd_every_day = gcd_every_day_;
  snap.anycast_counts = sorted_counts(anycast_days_);
  snap.gcd_counts = sorted_counts(gcd_days_);
  return snap;
}

LongitudinalStore LongitudinalStore::from_snapshot(
    const LongitudinalSnapshot& snap) {
  LongitudinalStore store;
  store.days_ = snap.days;
  store.degraded_days_ = snap.degraded_days;
  store.anycast_total_ = snap.anycast_total;
  store.gcd_total_ = snap.gcd_total;
  store.anycast_every_day_ = snap.anycast_every_day;
  store.gcd_every_day_ = snap.gcd_every_day;
  store.anycast_days_.reserve(snap.anycast_counts.size());
  for (const auto& [prefix, n] : snap.anycast_counts) {
    store.anycast_days_.emplace(prefix, n);
  }
  store.gcd_days_.reserve(snap.gcd_counts.size());
  for (const auto& [prefix, n] : snap.gcd_counts) {
    store.gcd_days_.emplace(prefix, n);
  }
  return store;
}

}  // namespace laces::census
