#include "census/longitudinal.hpp"

namespace laces::census {

void LongitudinalStore::add(const DailyCensus& census) {
  if (census.degraded) {
    // A degraded day under-observes the deployment (lost sites deflate VP
    // counts); folding it in would punish genuinely stable prefixes.
    ++degraded_days_;
    return;
  }
  ++days_;
  for (const auto& [prefix, rec] : census.records) {
    if (rec.anycast_based_detected()) {
      ++anycast_days_[prefix];
      ++anycast_total_;
    }
    if (rec.gcd_confirmed()) {
      ++gcd_days_[prefix];
      ++gcd_total_;
    }
  }
}

StabilityStats LongitudinalStore::stability(
    const std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>&
        counts,
    std::size_t total) const {
  StabilityStats stats;
  stats.days = days_;
  stats.degraded_days = degraded_days_;
  stats.union_size = counts.size();
  for (const auto& [prefix, n] : counts) {
    if (n == days_) ++stats.every_day;
  }
  stats.daily_mean =
      days_ == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(days_);
  return stats;
}

StabilityStats LongitudinalStore::anycast_based_stability() const {
  return stability(anycast_days_, anycast_total_);
}

StabilityStats LongitudinalStore::gcd_stability() const {
  return stability(gcd_days_, gcd_total_);
}

std::size_t LongitudinalStore::gcd_days(const net::Prefix& prefix) const {
  const auto it = gcd_days_.find(prefix);
  return it == gcd_days_.end() ? 0 : it->second;
}

namespace {

std::vector<net::Prefix> intermittent_of(
    const std::unordered_map<net::Prefix, std::uint32_t, net::PrefixHash>&
        counts,
    std::size_t days) {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, n] : counts) {
    if (n < days) out.push_back(prefix);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<net::Prefix> LongitudinalStore::intermittent_anycast_based()
    const {
  return intermittent_of(anycast_days_, days_);
}

std::vector<net::Prefix> LongitudinalStore::intermittent_gcd() const {
  return intermittent_of(gcd_days_, days_);
}

}  // namespace laces::census
