// Census publication format (the public Git repository of §4.2.4).
//
// One CSV-style line per published prefix:
//   prefix,icmp,icmp_vps,tcp,tcp_vps,udp,udp_vps,gcd,gcd_sites,partial,locations
// where locations is a |-separated list of "City/CC" geolocations.
#pragma once

#include <iosfwd>
#include <string>

#include "census/census.hpp"

namespace laces::census {

/// Header line of the publication format.
std::string csv_header();

/// One prefix's census line.
std::string to_csv(const PrefixRecord& record);

/// Writes the full census (published prefixes only, sorted) to `out`.
void write_census(std::ostream& out, const DailyCensus& census);

/// Renders the whole census to a string (convenience for tests/examples).
std::string render_census(const DailyCensus& census);

/// Parses a published census back (the consumer side of the public
/// repository: longitudinal tooling reads prior days' files).
/// Throws std::runtime_error on malformed input.
DailyCensus parse_census(std::istream& in);

}  // namespace laces::census
