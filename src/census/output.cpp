#include "census/output.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace laces::census {
namespace {

void append_protocol(std::string& line, const PrefixRecord& rec,
                     net::Protocol protocol) {
  const auto it = rec.anycast_based.find(protocol);
  if (it == rec.anycast_based.end()) {
    line += ",n/a,0";
    return;
  }
  line += ",";
  line += core::to_string(it->second.verdict);
  line += ",";
  line += std::to_string(it->second.vp_count);
}

}  // namespace

std::string csv_header() {
  return "prefix,icmp,icmp_vps,tcp,tcp_vps,udp,udp_vps,gcd,gcd_sites,"
         "partial,locations";
}

std::string to_csv(const PrefixRecord& rec) {
  std::string line = rec.prefix.to_string();
  append_protocol(line, rec, net::Protocol::kIcmp);
  append_protocol(line, rec, net::Protocol::kTcp);
  append_protocol(line, rec, net::Protocol::kUdpDns);
  line += ",";
  line += rec.gcd_verdict ? gcd::to_string(*rec.gcd_verdict) : "n/a";
  line += ",";
  line += std::to_string(rec.gcd_site_count);
  line += rec.partial_anycast ? ",partial" : ",full";
  line += ",";
  for (std::size_t i = 0; i < rec.gcd_locations.size(); ++i) {
    if (i > 0) line += "|";
    const auto& city = geo::city(rec.gcd_locations[i]);
    line += std::string(city.name) + "/" + std::string(city.country);
  }
  return line;
}

void write_census(std::ostream& out, const DailyCensus& census) {
  out << "# LACeS census day " << census.day << "\n";
  if (census.degraded) {
    // Degraded days publish their (partial) records but carry the marker so
    // downstream longitudinal analysis can exclude them.
    out << "# degraded: lost_sites=" << census.lost_sites
        << " canary_alarms=" << census.canary_alarms << "\n";
  }
  out << csv_header() << "\n";
  for (const auto& prefix : census.published_prefixes()) {
    out << to_csv(*census.find(prefix)) << "\n";
  }
}

std::string render_census(const DailyCensus& census) {
  std::ostringstream out;
  write_census(out, census);
  return out.str();
}

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

namespace {

/// Errors name the 1-based line so a malformed multi-thousand-line
/// publication file points straight at the offending record.
[[noreturn]] void fail_at(std::size_t line_number, const std::string& what) {
  throw std::runtime_error("census file line " +
                           std::to_string(line_number) + ": " + what);
}

std::uint64_t parse_number(const std::string& s, std::size_t line_number,
                           const char* what) {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
  try {
    value = std::stoull(s, &consumed);
  } catch (const std::exception&) {
    fail_at(line_number, std::string("bad ") + what + ": '" + s + "'");
  }
  if (consumed == 0 || (consumed < s.size() && s[consumed] != ' ')) {
    fail_at(line_number, std::string("bad ") + what + ": '" + s + "'");
  }
  return value;
}

core::Verdict parse_verdict(const std::string& s, std::size_t line_number) {
  if (s == "unicast") return core::Verdict::kUnicast;
  if (s == "anycast") return core::Verdict::kAnycast;
  if (s == "unresponsive") return core::Verdict::kUnresponsive;
  fail_at(line_number, "bad anycast-based verdict: '" + s + "'");
}

void parse_protocol_fields(PrefixRecord& rec, net::Protocol protocol,
                           const std::string& verdict, const std::string& vps,
                           std::size_t line_number) {
  if (verdict == "n/a") return;
  rec.anycast_based[protocol] = ProtocolObservation{
      parse_verdict(verdict, line_number),
      static_cast<std::uint32_t>(parse_number(vps, line_number, "VP count"))};
}

}  // namespace

DailyCensus parse_census(std::istream& in) {
  DailyCensus census;
  std::string line;
  std::size_t line_number = 0;
  const auto next_line = [&]() {
    ++line_number;
    return static_cast<bool>(std::getline(in, line));
  };
  // Comment line: "# LACeS census day N".
  if (!next_line() || line.rfind("# LACeS census day ", 0) != 0) {
    fail_at(line_number, "missing day header");
  }
  census.day = static_cast<std::uint32_t>(
      parse_number(line.substr(19), line_number, "day number"));
  if (!next_line()) fail_at(line_number, "missing column header");
  // Optional degraded-day marker: "# degraded: lost_sites=N canary_alarms=M".
  if (line.rfind("# degraded: ", 0) == 0) {
    census.degraded = true;
    const auto lost_pos = line.find("lost_sites=");
    if (lost_pos != std::string::npos) {
      census.lost_sites = static_cast<std::uint16_t>(parse_number(
          line.substr(lost_pos + 11), line_number, "lost_sites"));
    }
    const auto alarm_pos = line.find("canary_alarms=");
    if (alarm_pos != std::string::npos) {
      census.canary_alarms = static_cast<std::uint32_t>(parse_number(
          line.substr(alarm_pos + 14), line_number, "canary_alarms"));
    }
    if (!next_line()) fail_at(line_number, "missing column header");
  }
  if (line != csv_header()) fail_at(line_number, "bad column header");
  while (next_line()) {
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() != 11) {
      fail_at(line_number, "bad field count (want 11, got " +
                               std::to_string(fields.size()) + "): " + line);
    }
    PrefixRecord rec;
    if (const auto p4 = net::Ipv4Prefix::parse(fields[0])) {
      rec.prefix = *p4;
    } else {
      // IPv6 prefix: "<addr>/48".
      const auto slash = fields[0].find('/');
      const auto addr = net::Ipv6Address::parse(fields[0].substr(0, slash));
      if (!addr || slash == std::string::npos) {
        fail_at(line_number, "bad prefix: '" + fields[0] + "'");
      }
      rec.prefix = net::Ipv6Prefix(
          *addr, static_cast<std::uint8_t>(parse_number(
                     fields[0].substr(slash + 1), line_number,
                     "prefix length")));
    }
    parse_protocol_fields(rec, net::Protocol::kIcmp, fields[1], fields[2],
                          line_number);
    parse_protocol_fields(rec, net::Protocol::kTcp, fields[3], fields[4],
                          line_number);
    parse_protocol_fields(rec, net::Protocol::kUdpDns, fields[5], fields[6],
                          line_number);
    if (fields[7] != "n/a") {
      if (fields[7] == "anycast") {
        rec.gcd_verdict = gcd::GcdVerdict::kAnycast;
      } else if (fields[7] == "unicast") {
        rec.gcd_verdict = gcd::GcdVerdict::kUnicast;
      } else if (fields[7] == "unresponsive") {
        rec.gcd_verdict = gcd::GcdVerdict::kUnresponsive;
      } else {
        fail_at(line_number, "bad GCD verdict: '" + fields[7] + "'");
      }
    }
    rec.gcd_site_count = static_cast<std::uint32_t>(
        parse_number(fields[8], line_number, "gcd_sites"));
    if (fields[9] != "partial" && fields[9] != "full") {
      fail_at(line_number, "bad partial flag: '" + fields[9] + "'");
    }
    rec.partial_anycast = fields[9] == "partial";
    if (!fields[10].empty()) {
      for (const auto& loc : split(fields[10], '|')) {
        const auto slash = loc.find('/');
        const auto city = geo::find_city(loc.substr(0, slash));
        if (city) rec.gcd_locations.push_back(*city);
      }
    }
    if (!census.records.emplace(rec.prefix, std::move(rec)).second) {
      fail_at(line_number, "duplicate prefix: " + fields[0]);
    }
  }
  return census;
}

}  // namespace laces::census
