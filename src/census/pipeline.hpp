// The daily measurement pipeline of Figure 3.
//
//   anycast-based censuses (ICMP/TCP/DNS, v4+v6, from the anycast
//   deployment) -> candidate anycast targets (AT) -> GCD measurements from
//   Ark toward the ATs only -> merged daily output.
//
// The AT list is persistent and fed back (the purple arrow): prefixes found
// by GCD — including the bi-annual full-hitlist GCD_Ark runs and operator
// ground truth — stay on the list so anycast-based FNs remain covered.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "census/canary.hpp"
#include "census/census.hpp"
#include "core/session.hpp"
#include "gcd/classify.hpp"
#include "hitlist/hitlist.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/latency.hpp"
#include "platform/platform.hpp"
#include "topo/network.hpp"

namespace laces::census {

/// Serializable cross-day pipeline state: everything run_day() carries
/// from one day to the next. laces_store checkpoints this (plus the sim
/// clock and longitudinal counters) so a killed census series resumes
/// bit-identically — see docs/storage.md.
struct PipelineState {
  /// Persistent AT list in insertion order (the purple feedback arrow).
  std::vector<net::Prefix> at_list;
  /// Partial-anycast flags, sorted for deterministic encoding.
  std::vector<net::Prefix> partial;
  net::MeasurementId next_measurement = 100;
  std::uint64_t gcd_run_counter = 0;
  /// Canary baseline (empty unless config.canary).
  std::size_t canary_days = 0;
  std::vector<std::pair<net::WorkerId, double>> canary_share_sums;

  bool operator==(const PipelineState&) const = default;
};

struct PipelineConfig {
  bool icmp = true;
  bool tcp = true;
  bool dns = true;
  bool ipv4 = true;
  bool ipv6 = false;
  /// Anycast-stage probing.
  double targets_per_second = 20000.0;
  SimDuration worker_offset = SimDuration::seconds(1);
  /// GCD-stage probing.
  net::Protocol gcd_protocol = net::Protocol::kIcmp;
  double gcd_targets_per_second = 4000.0;
  /// Probe a small canary target set each day and alarm on catchment-share
  /// collapses (§6 future work). Off by default: the canary adds a
  /// measurement per day, which shifts probe/trace output.
  bool canary = false;
  /// Canary stage probes the first `canary_targets` ping-hitlist entries.
  std::size_t canary_targets = 64;
};

class Pipeline {
 public:
  /// `session` wraps the anycast deployment, `ark_v4`/`ark_v6` the latency
  /// platforms (the paper's 163 production Ark nodes / 118 v6 nodes).
  Pipeline(topo::SimNetwork& network, core::Session& session,
           platform::UnicastPlatform ark_v4, platform::UnicastPlatform ark_v6,
           PipelineConfig config = {});

  /// Run the full pipeline for one day.
  DailyCensus run_day(std::uint32_t day);

  /// Seed the persistent AT list (GCD_Ark results, operator ground truth).
  void extend_at_list(const std::vector<net::Prefix>& prefixes);

  /// Flag prefixes as partial anycast (from the /32-granularity scan,
  /// §5.6); subsequent censuses carry the flag.
  void flag_partial_anycast(const std::vector<net::Prefix>& prefixes);

  const std::vector<net::Prefix>& persistent_at_list() const {
    return at_list_;
  }

  /// Snapshot of the cross-day state (for archive checkpoints).
  PipelineState state() const;
  /// Restores a checkpointed state; the inverse of state(). The caller is
  /// responsible for also restoring the simulated clock (the event queue)
  /// before the next run_day() so probe timestamps continue seamlessly.
  void restore_state(const PipelineState& state);

  /// Canary state (baselines across days); only fed when config.canary.
  const CanaryMonitor& canary() const { return canary_; }

  /// The hitlists the pipeline probes (rebuilt per construction).
  const hitlist::Hitlist& ping_hitlist(net::IpVersion version) const;
  const hitlist::Hitlist& dns_hitlist(net::IpVersion version) const;

 private:
  void run_family(DailyCensus& census, net::IpVersion version,
                  std::uint32_t day);
  /// Probe the canary target set and raise catchment-share alarms.
  void run_canary(DailyCensus& census);
  /// Watchdog deadline for an anycast-stage measurement: twice the expected
  /// streaming + fan-out + drain time, plus a fixed margin. A measurement
  /// that overruns it is force-completed with partial results.
  SimDuration deadline_for(double rate, std::size_t targets) const;
  /// Representative probe address for a census prefix.
  std::optional<net::IpAddress> representative(const net::Prefix& p) const;

  void register_metrics();
  /// Close `span` and record its simulated duration under the Figure-3
  /// stage histogram, so per-stage latency is scrapeable, not just
  /// traceable.
  static void finish_stage(obs::Span& span, obs::Histogram* duration);
  /// Effective pacing actually achieved by a stage, vs. the configured
  /// responsible-rate budget (§4.2).
  static void record_rate(obs::Gauge* configured_gauge,
                          obs::Gauge* effective_gauge, double configured,
                          double targets, SimDuration elapsed);

  topo::SimNetwork& network_;
  core::Session& session_;
  platform::UnicastPlatform ark_v4_;
  platform::UnicastPlatform ark_v6_;
  PipelineConfig config_;
  hitlist::Hitlist ping_v4_, ping_v6_, dns_v4_, dns_v6_;
  std::unordered_map<net::Prefix, net::IpAddress, net::PrefixHash> rep_;
  std::vector<net::Prefix> at_list_;
  std::unordered_set<net::Prefix, net::PrefixHash> at_set_;
  std::unordered_set<net::Prefix, net::PrefixHash> partial_;
  net::MeasurementId next_measurement_ = 100;
  std::uint64_t gcd_run_counter_ = 0;
  CanaryMonitor canary_;

  // Metric handles, registered once at construction so the per-record /
  // per-stage hot paths never take the registry mutex or rebuild label
  // sets (registry references stay valid across Registry::reset()).
  obs::Histogram* stage_census_ = nullptr;
  obs::Histogram* stage_at_ = nullptr;
  obs::Histogram* stage_gcd_ = nullptr;
  obs::Histogram* stage_merge_ = nullptr;
  obs::Histogram* stage_day_ = nullptr;
  obs::Gauge* rate_configured_anycast_ = nullptr;
  obs::Gauge* rate_effective_anycast_ = nullptr;
  obs::Gauge* rate_configured_gcd_ = nullptr;
  obs::Gauge* rate_effective_gcd_ = nullptr;
  /// Indexed by core::Verdict / gcd::GcdVerdict enum value.
  std::array<obs::Counter*, 3> classified_anycast_{};
  std::array<obs::Counter*, 3> classified_gcd_{};
  obs::Counter* days_total_ = nullptr;
  obs::Gauge* at_list_size_ = nullptr;
  std::array<obs::Counter*, net::kAllProtocols.size()> targets_probed_{};
  obs::Counter* probes_sent_anycast_ = nullptr;
  obs::Counter* probes_sent_gcd_ = nullptr;
  obs::Counter* degraded_days_ = nullptr;
  obs::Counter* lost_sites_total_ = nullptr;
  obs::Gauge* anycast_targets_v4_ = nullptr;
  obs::Gauge* anycast_targets_v6_ = nullptr;
};

}  // namespace laces::census
