// The daily measurement pipeline of Figure 3.
//
//   anycast-based censuses (ICMP/TCP/DNS, v4+v6, from the anycast
//   deployment) -> candidate anycast targets (AT) -> GCD measurements from
//   Ark toward the ATs only -> merged daily output.
//
// The AT list is persistent and fed back (the purple arrow): prefixes found
// by GCD — including the bi-annual full-hitlist GCD_Ark runs and operator
// ground truth — stay on the list so anycast-based FNs remain covered.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "census/census.hpp"
#include "core/session.hpp"
#include "gcd/classify.hpp"
#include "hitlist/hitlist.hpp"
#include "platform/latency.hpp"
#include "platform/platform.hpp"
#include "topo/network.hpp"

namespace laces::census {

struct PipelineConfig {
  bool icmp = true;
  bool tcp = true;
  bool dns = true;
  bool ipv4 = true;
  bool ipv6 = false;
  /// Anycast-stage probing.
  double targets_per_second = 20000.0;
  SimDuration worker_offset = SimDuration::seconds(1);
  /// GCD-stage probing.
  net::Protocol gcd_protocol = net::Protocol::kIcmp;
  double gcd_targets_per_second = 4000.0;
};

class Pipeline {
 public:
  /// `session` wraps the anycast deployment, `ark_v4`/`ark_v6` the latency
  /// platforms (the paper's 163 production Ark nodes / 118 v6 nodes).
  Pipeline(topo::SimNetwork& network, core::Session& session,
           platform::UnicastPlatform ark_v4, platform::UnicastPlatform ark_v6,
           PipelineConfig config = {});

  /// Run the full pipeline for one day.
  DailyCensus run_day(std::uint32_t day);

  /// Seed the persistent AT list (GCD_Ark results, operator ground truth).
  void extend_at_list(const std::vector<net::Prefix>& prefixes);

  /// Flag prefixes as partial anycast (from the /32-granularity scan,
  /// §5.6); subsequent censuses carry the flag.
  void flag_partial_anycast(const std::vector<net::Prefix>& prefixes);

  const std::vector<net::Prefix>& persistent_at_list() const {
    return at_list_;
  }

  /// The hitlists the pipeline probes (rebuilt per construction).
  const hitlist::Hitlist& ping_hitlist(net::IpVersion version) const;
  const hitlist::Hitlist& dns_hitlist(net::IpVersion version) const;

 private:
  void run_family(DailyCensus& census, net::IpVersion version,
                  std::uint32_t day);
  /// Representative probe address for a census prefix.
  std::optional<net::IpAddress> representative(const net::Prefix& p) const;

  topo::SimNetwork& network_;
  core::Session& session_;
  platform::UnicastPlatform ark_v4_;
  platform::UnicastPlatform ark_v6_;
  PipelineConfig config_;
  hitlist::Hitlist ping_v4_, ping_v6_, dns_v4_, dns_v6_;
  std::unordered_map<net::Prefix, net::IpAddress, net::PrefixHash> rep_;
  std::vector<net::Prefix> at_list_;
  std::unordered_set<net::Prefix, net::PrefixHash> at_set_;
  std::unordered_set<net::Prefix, net::PrefixHash> partial_;
  net::MeasurementId next_measurement_ = 100;
  std::uint64_t gcd_run_counter_ = 0;
};

}  // namespace laces::census
