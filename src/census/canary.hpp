// Canary monitoring (paper §6 future work: "add support for a canary
// anycast deployment to detect outages").
//
// Each day the deployment probes a small, stable reference target set and
// the monitor tracks which share of responses every worker captures. A
// healthy site owns a roughly constant catchment share; a site whose share
// collapses relative to its own baseline has lost its announcement or its
// connectivity — exactly the failure the daily census must not silently
// absorb (a vanished site deflates receiving-VP counts and miscounts
// anycast).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/results.hpp"

namespace laces::census {

struct CanaryAlarm {
  net::WorkerId worker = 0;
  double baseline_share = 0.0;
  double today_share = 0.0;
};

class CanaryMonitor {
 public:
  /// `alarm_drop`: alarm when a site's share falls below
  /// (1 - alarm_drop) x its baseline. `min_baseline_share` ignores sites
  /// that never carried meaningful traffic.
  explicit CanaryMonitor(double alarm_drop = 0.8,
                         double min_baseline_share = 0.005)
      : alarm_drop_(alarm_drop), min_baseline_share_(min_baseline_share) {}

  /// Record one canary measurement. Returns the alarms raised by this
  /// observation compared to the baseline built from all prior ones.
  std::vector<CanaryAlarm> observe(const core::MeasurementResults& results);

  std::size_t days_observed() const { return days_; }
  /// Baseline response share of a worker (mean over observed days).
  double baseline_share(net::WorkerId worker) const;

  /// Accumulated per-worker share sums (for checkpointing the baseline).
  const std::map<net::WorkerId, double>& share_sums() const {
    return share_sums_;
  }
  /// Restores a checkpointed baseline (inverse of days_observed() +
  /// share_sums()); alarm thresholds are construction-time config.
  void restore(std::size_t days, std::map<net::WorkerId, double> share_sums) {
    days_ = days;
    share_sums_ = std::move(share_sums);
  }

 private:
  std::map<net::WorkerId, double> share_of(
      const core::MeasurementResults& results) const;

  double alarm_drop_;
  double min_baseline_share_;
  std::size_t days_ = 0;
  std::map<net::WorkerId, double> share_sums_;
};

}  // namespace laces::census
