#include "analysis/external.hpp"

#include <algorithm>
#include <map>

#include "util/rng.hpp"

namespace laces::analysis {

std::vector<net::Ipv4Prefix> simulate_bgptools(
    const topo::World& world, const PrefixSet& anycast_based_v4) {
  std::vector<net::Ipv4Prefix> out;
  for (const auto& announcement : world.bgp_table()) {
    const auto& bgp = announcement.prefix;
    // BGPTools: one anycast address inside => the whole prefix is anycast.
    const bool any_at = std::any_of(
        anycast_based_v4.begin(), anycast_based_v4.end(),
        [&](const net::Prefix& at) {
          return at.version() == net::IpVersion::kV4 && bgp.contains(at.v4());
        });
    if (any_at) out.push_back(bgp);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Slash24Class classify_slash24(const census::DailyCensus& ours,
                              const net::Ipv4Prefix& slash24) {
  const auto* rec = ours.find(net::Prefix(slash24));
  if (rec == nullptr) return Slash24Class::kUnresponsive;
  if (rec->gcd_confirmed()) return Slash24Class::kAnycast;
  // GCD says unicast, or only the anycast-based stage saw responses.
  if (rec->gcd_verdict && *rec->gcd_verdict == gcd::GcdVerdict::kUnicast) {
    return Slash24Class::kUnicast;
  }
  for (const auto& [proto, obs] : rec->anycast_based) {
    if (obs.verdict != core::Verdict::kUnresponsive) {
      return Slash24Class::kUnicast;
    }
  }
  return Slash24Class::kUnresponsive;
}

std::vector<PrefixSizeRow> bgptools_size_table(
    const census::DailyCensus& ours,
    const std::vector<net::Ipv4Prefix>& bgptools_prefixes) {
  std::map<std::uint8_t, PrefixSizeRow> rows;
  for (const auto& bgp : bgptools_prefixes) {
    auto& row = rows[bgp.length()];
    row.prefix_length = bgp.length();
    ++row.occurrence;
    const std::uint64_t slash24s = bgp.count_slash24();
    for (std::uint64_t i = 0; i < slash24s; ++i) {
      const net::Ipv4Prefix sub(
          net::Ipv4Address(bgp.address().value() +
                           static_cast<std::uint32_t>(i) * 256),
          24);
      switch (classify_slash24(ours, sub)) {
        case Slash24Class::kAnycast:
          ++row.anycast_24s;
          break;
        case Slash24Class::kUnicast:
          ++row.unicast_24s;
          break;
        case Slash24Class::kUnresponsive:
          ++row.unresponsive_24s;
          break;
      }
    }
  }
  std::vector<PrefixSizeRow> out;
  for (auto& [len, row] : rows) out.push_back(row);
  return out;
}

std::vector<net::Ipv6Prefix> simulate_bgptools_v6(
    const topo::World& world, const PrefixSet& anycast_based_v6) {
  std::vector<net::Ipv6Prefix> out;
  for (const auto& announcement : world.bgp_table_v6()) {
    const auto& bgp = announcement.prefix;
    const bool any_at = std::any_of(
        anycast_based_v6.begin(), anycast_based_v6.end(),
        [&](const net::Prefix& at) {
          return at.version() == net::IpVersion::kV6 &&
                 bgp.contains(at.v6().address());
        });
    if (any_at) out.push_back(bgp);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

BgpToolsV6Comparison compare_bgptools_v6(
    const std::vector<net::Ipv6Prefix>& bgptools, const PrefixSet& ours_gcd) {
  BgpToolsV6Comparison cmp;
  cmp.bgptools_prefixes = bgptools.size();
  cmp.our_gcd_total = ours_gcd.size();
  for (const auto& bgp : bgptools) {
    const bool covered = std::any_of(
        ours_gcd.begin(), ours_gcd.end(), [&](const net::Prefix& p) {
          return p.version() == net::IpVersion::kV6 &&
                 bgp.contains(p.v6().address());
        });
    if (covered) ++cmp.covered_by_ours;
  }
  for (const auto& p : ours_gcd) {
    if (p.version() != net::IpVersion::kV6) continue;
    const bool inside = std::any_of(
        bgptools.begin(), bgptools.end(), [&](const net::Ipv6Prefix& bgp) {
          return bgp.contains(p.v6().address());
        });
    if (!inside) ++cmp.missed_by_bgptools;
  }
  return cmp;
}

PrefixSet simulate_ipinfo(const topo::World& world, std::uint32_t snapshot_day,
                          net::IpVersion version, std::uint64_t seed) {
  PrefixSet out;
  for (const auto& target : world.targets()) {
    if (!target.representative || target.address.version() != version) {
      continue;
    }
    const auto prefix = net::Prefix::of(target.address);
    const auto& dep = world.deployment(target.deployment);
    bool anycast_in_window = false;
    for (std::uint32_t d = snapshot_day >= 6 ? snapshot_day - 6 : 0;
         d <= snapshot_day; ++d) {
      if (topo::is_anycast_ground_truth(dep.kind, dep.anycast_active(d))) {
        anycast_in_window = true;
        break;
      }
    }
    if (!anycast_in_window) continue;
    // Commercial coverage gap: regional deployments are missed at ~35%.
    if (dep.kind == topo::DeploymentKind::kAnycastRegional) {
      StableHash h(seed);
      h.mix(net::hash_value(target.address));
      if (h.unit() < 0.35) continue;
    }
    out.push_back(prefix);
  }
  return canonical(std::move(out));
}

}  // namespace laces::analysis
