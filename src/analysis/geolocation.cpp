#include "analysis/geolocation.hpp"

#include <algorithm>
#include <limits>

#include "util/stats.hpp"

namespace laces::analysis {

GeolocationAccuracy evaluate_geolocation(const topo::World& world,
                                         const gcd::GcdClassification& gcd,
                                         std::uint32_t day) {
  GeolocationAccuracy acc;
  std::vector<double> errors;
  double ratio_sum = 0.0;

  for (const auto& [prefix, result] : gcd) {
    if (result.verdict != gcd::GcdVerdict::kAnycast) continue;
    const auto truth = world.truth(prefix, day);
    if (!truth.exists || !truth.anycast) continue;
    const auto& dep = world.deployment(truth.representative_deployment);
    if (dep.pops.empty()) continue;

    ++acc.prefixes_evaluated;
    ratio_sum += static_cast<double>(result.site_count()) /
                 static_cast<double>(dep.pops.size());

    for (const auto& site : result.sites) {
      if (!site.city) continue;
      const auto& estimate = geo::city(*site.city).location;
      double best = std::numeric_limits<double>::infinity();
      for (const auto& pop : dep.pops) {
        best = std::min(best, geo::distance_km(
                                  estimate, geo::city(pop.attach.city).location));
      }
      errors.push_back(best);
    }
  }

  acc.sites_evaluated = errors.size();
  if (!errors.empty()) {
    acc.mean_error_km = mean(errors);
    acc.median_error_km = median(errors);
    const auto count_within = [&errors](double km) {
      return static_cast<double>(std::count_if(
                 errors.begin(), errors.end(),
                 [km](double e) { return e <= km; })) /
             static_cast<double>(errors.size());
    };
    acc.within_100km = count_within(100.0);
    acc.within_500km = count_within(500.0);
  }
  if (acc.prefixes_evaluated > 0) {
    acc.enumeration_ratio =
        ratio_sum / static_cast<double>(acc.prefixes_evaluated);
  }
  return acc;
}

}  // namespace laces::analysis
