#include "analysis/protocols.hpp"

#include <algorithm>

namespace laces::analysis {

std::string ProtocolRegion::label() const {
  std::string out;
  if (icmp) out += "ICMP";
  if (tcp) {
    if (!out.empty()) out += "+";
    out += "TCP";
  }
  if (udp) {
    if (!out.empty()) out += "+";
    out += "UDP";
  }
  return out.empty() ? "none" : out;
}

ProtocolBreakdown protocol_breakdown(const PrefixSet& icmp,
                                     const PrefixSet& tcp,
                                     const PrefixSet& udp) {
  ProtocolBreakdown bd;
  bd.icmp_total = icmp.size();
  bd.tcp_total = tcp.size();
  bd.udp_total = udp.size();
  const auto all = set_union(set_union(icmp, tcp), udp);
  bd.union_total = all.size();

  std::array<std::size_t, 8> counts{};
  for (const auto& prefix : all) {
    const int mask = (contains(icmp, prefix) ? 1 : 0) |
                     (contains(tcp, prefix) ? 2 : 0) |
                     (contains(udp, prefix) ? 4 : 0);
    ++counts[static_cast<std::size_t>(mask)];
  }
  for (int mask = 1; mask < 8; ++mask) {
    ProtocolRegion region;
    region.icmp = (mask & 1) != 0;
    region.tcp = (mask & 2) != 0;
    region.udp = (mask & 4) != 0;
    region.count = counts[static_cast<std::size_t>(mask)];
    bd.regions.push_back(region);
  }
  std::sort(bd.regions.begin(), bd.regions.end(),
            [](const ProtocolRegion& a, const ProtocolRegion& b) {
              return a.count > b.count;
            });
  return bd;
}

}  // namespace laces::analysis
