// Table 3: anycast-based candidates bucketed by receiving-VP count,
// cross-checked against GCD confirmation.
#pragma once

#include <string>
#include <vector>

#include "census/census.hpp"

namespace laces::analysis {

struct VpCountBucket {
  std::string label;        // "2", "3", ..., "5-10", "25-32"
  std::size_t candidates = 0;   // anycast-based ATs in the bucket
  std::size_t gcd_confirmed = 0;
  std::size_t not_confirmed = 0;

  double overlap() const {
    return candidates == 0
               ? 0.0
               : static_cast<double>(gcd_confirmed) / candidates;
  }
};

/// Buckets a census's anycast-based detections for `protocol` by VP count
/// using the paper's bucket boundaries (2,3,4,5, 5-10, 10-15, ..., 25-32).
std::vector<VpCountBucket> vp_count_disagreement(
    const census::DailyCensus& census, net::Protocol protocol,
    std::size_t deployment_size = 32);

}  // namespace laces::analysis
