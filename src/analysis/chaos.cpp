#include "analysis/chaos.hpp"

#include <algorithm>

namespace laces::analysis {

ChaosCounts chaos_counts(const core::MeasurementResults& chaos_results) {
  ChaosCounts out;
  for (const auto& rec : chaos_results.records) {
    if (!rec.txt) continue;
    out[net::Prefix::of(rec.target)].insert(*rec.txt);
  }
  return out;
}

std::vector<ChaosComparison> chaos_comparison(
    const ChaosCounts& chaos, const core::AnycastClassification& anycast_based,
    const gcd::GcdClassification& gcd_results) {
  std::vector<ChaosComparison> out;
  out.reserve(chaos.size());
  for (const auto& [prefix, values] : chaos) {
    ChaosComparison cmp;
    cmp.prefix = prefix;
    cmp.chaos_values = values.size();
    if (const auto it = anycast_based.find(prefix); it != anycast_based.end()) {
      cmp.anycast_based_vps = it->second.vp_count();
    }
    if (const auto it = gcd_results.find(prefix); it != gcd_results.end()) {
      cmp.gcd_sites = it->second.site_count();
    }
    out.push_back(std::move(cmp));
  }
  std::sort(out.begin(), out.end(),
            [](const ChaosComparison& a, const ChaosComparison& b) {
              return a.prefix < b.prefix;
            });
  return out;
}

}  // namespace laces::analysis
