// Catchment statistics (the Verfploeter-style operational view the tool
// also supports, paper §4.1.3 / de Vries et al. 2017).
//
// From one anycast-mode measurement, maps every responsive census prefix
// to the site that captured its responses, and summarizes how (un)evenly
// the Internet distributes over the deployment.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/results.hpp"

namespace laces::analysis {

struct SiteCatchment {
  net::WorkerId worker = 0;
  std::size_t prefixes = 0;
  double share = 0.0;  // fraction of responsive prefixes
};

struct CatchmentStats {
  /// Per-site catchments, descending by size.
  std::vector<SiteCatchment> sites;
  std::size_t responsive_prefixes = 0;
  /// Shannon entropy of the share distribution, normalized to [0, 1]
  /// (1 = perfectly even across the sites that received anything).
  double normalized_entropy = 0.0;
  /// Combined share of the k largest catchments.
  double top_share(std::size_t k) const;
  /// Largest catchment / mean catchment (imbalance factor).
  double imbalance() const;
};

/// Computes catchments from an anycast-mode measurement. A prefix is
/// assigned to the site that captured its first response (catchments are
/// per-flow stable; later duplicates come from ECMP/flip noise).
CatchmentStats catchment_stats(const core::MeasurementResults& results);

}  // namespace laces::analysis
