#include "analysis/truth.hpp"

#include <algorithm>
#include <map>

namespace laces::analysis {

ConfusionMatrix evaluate(const topo::World& world, const PrefixSet& detected,
                         const PrefixSet& probed, std::uint32_t day) {
  ConfusionMatrix m;
  for (const auto& prefix : probed) {
    const auto truth = world.truth(prefix, day);
    if (!truth.exists) continue;
    const bool hit = contains(detected, prefix);
    if (truth.anycast) {
      if (hit) {
        ++m.true_positive;
      } else {
        ++m.false_negative;
      }
    } else {
      if (hit) {
        ++m.false_positive;
        if (truth.global_bgp_unicast) ++m.fp_global_bgp;
      } else {
        ++m.true_negative;
      }
    }
  }
  return m;
}

std::vector<OriginCount> origin_ranking(const topo::World& world,
                                        const PrefixSet& detected_v4,
                                        const PrefixSet& detected_v6,
                                        std::uint32_t day) {
  std::map<topo::OrgId, OriginCount> counts;
  const auto tally = [&](const PrefixSet& set, bool v4) {
    for (const auto& prefix : set) {
      const auto truth = world.truth(prefix, day);
      if (!truth.exists) continue;
      const auto& org = world.org(truth.org);
      auto& entry = counts[org.id];
      entry.org_name = org.name;
      entry.asn = org.asn;
      if (v4) {
        ++entry.v4_prefixes;
      } else {
        ++entry.v6_prefixes;
      }
    }
  };
  tally(detected_v4, true);
  tally(detected_v6, false);

  std::vector<OriginCount> out;
  out.reserve(counts.size());
  for (auto& [org, entry] : counts) out.push_back(std::move(entry));
  // Paper Table 6 presentation: IPv4 count first, IPv6 as tie-breaker.
  std::sort(out.begin(), out.end(), [](const OriginCount& a,
                                       const OriginCount& b) {
    if (a.v4_prefixes != b.v4_prefixes) return a.v4_prefixes > b.v4_prefixes;
    return a.v6_prefixes > b.v6_prefixes;
  });
  return out;
}

}  // namespace laces::analysis
