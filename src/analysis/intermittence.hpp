// Attribution of longitudinal intermittence (paper §5.1.6's follow-up:
// prefixes not observed every day "include regional anycast deployments
// that are difficult to detect with GCD, cases of suspected BGP prefix
// hijacking (causing FPs), and anycast deployments that had downtime").
//
// Given the prefixes a method detected only on SOME days, classify each by
// the oracle-visible mechanism behind the flicker.
#pragma once

#include <cstdint>
#include <string_view>

#include "analysis/compare.hpp"
#include "topo/world.hpp"

namespace laces::analysis {

enum class IntermittenceCause : std::uint8_t {
  kTemporaryAnycast,   // deployment genuinely switches anycast<->unicast
  kChurn,              // target down on some days (hitlist churn)
  kFalsePositive,      // never anycast: route-flip / ECMP flicker
  kRegionalAnycast,    // real but hard to detect (regional deployment)
  kOther,              // stable global anycast flickering for other reasons
};

std::string_view to_string(IntermittenceCause cause);

struct IntermittenceBreakdown {
  std::size_t temporary_anycast = 0;
  std::size_t churn = 0;
  std::size_t false_positive = 0;
  std::size_t regional = 0;
  std::size_t other = 0;

  std::size_t total() const {
    return temporary_anycast + churn + false_positive + regional + other;
  }
};

/// Classifies one intermittent prefix over a day range [first_day, last_day].
IntermittenceCause classify_intermittence(const topo::World& world,
                                          const net::Prefix& prefix,
                                          std::uint32_t first_day,
                                          std::uint32_t last_day);

/// Aggregates over a set of intermittent prefixes.
IntermittenceBreakdown attribute_intermittence(const topo::World& world,
                                               const PrefixSet& intermittent,
                                               std::uint32_t first_day,
                                               std::uint32_t last_day);

}  // namespace laces::analysis
