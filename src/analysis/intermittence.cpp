#include "analysis/intermittence.hpp"

namespace laces::analysis {

std::string_view to_string(IntermittenceCause cause) {
  switch (cause) {
    case IntermittenceCause::kTemporaryAnycast:
      return "temporary anycast";
    case IntermittenceCause::kChurn:
      return "target churn";
    case IntermittenceCause::kFalsePositive:
      return "false positive";
    case IntermittenceCause::kRegionalAnycast:
      return "regional anycast";
    case IntermittenceCause::kOther:
      return "other";
  }
  return "?";
}

IntermittenceCause classify_intermittence(const topo::World& world,
                                          const net::Prefix& prefix,
                                          std::uint32_t first_day,
                                          std::uint32_t last_day) {
  const auto truth = world.truth(prefix, first_day);
  if (!truth.exists) return IntermittenceCause::kOther;
  const auto& dep = world.deployment(truth.representative_deployment);

  if (dep.kind == topo::DeploymentKind::kTemporaryAnycast) {
    return IntermittenceCause::kTemporaryAnycast;
  }
  // Never anycast on any day in the window => the flicker is measurement
  // noise (route flips / per-packet ECMP), i.e. a false positive.
  bool ever_anycast = false;
  for (std::uint32_t d = first_day; d <= last_day; ++d) {
    ever_anycast |= world.truth(prefix, d).anycast;
  }
  if (!ever_anycast) return IntermittenceCause::kFalsePositive;

  // Real anycast: was the representative down on some days?
  const auto* target = world.find_target(
      prefix.version() == net::IpVersion::kV4
          ? net::IpAddress(
                net::Ipv4Address(prefix.v4().address().value() + 1))
          : net::IpAddress(
                net::Ipv6Address(prefix.v6().address().hi(), 1)));
  if (target != nullptr) {
    for (std::uint32_t d = first_day; d <= last_day; ++d) {
      if (world.target_down(*target, d)) return IntermittenceCause::kChurn;
    }
  }
  if (dep.kind == topo::DeploymentKind::kAnycastRegional) {
    return IntermittenceCause::kRegionalAnycast;
  }
  return IntermittenceCause::kOther;
}

IntermittenceBreakdown attribute_intermittence(const topo::World& world,
                                               const PrefixSet& intermittent,
                                               std::uint32_t first_day,
                                               std::uint32_t last_day) {
  IntermittenceBreakdown breakdown;
  for (const auto& prefix : intermittent) {
    switch (classify_intermittence(world, prefix, first_day, last_day)) {
      case IntermittenceCause::kTemporaryAnycast:
        ++breakdown.temporary_anycast;
        break;
      case IntermittenceCause::kChurn:
        ++breakdown.churn;
        break;
      case IntermittenceCause::kFalsePositive:
        ++breakdown.false_positive;
        break;
      case IntermittenceCause::kRegionalAnycast:
        ++breakdown.regional;
        break;
      case IntermittenceCause::kOther:
        ++breakdown.other;
        break;
    }
  }
  return breakdown;
}

}  // namespace laces::analysis
