// External-census comparators (paper §5.7, Table 7, Appendix D).
//
// * BGPTools-style census: runs on our anycast-based stage but (1) lifts a
//   single anycast address to the whole announced BGP prefix and (2) never
//   filters with GCD — reproducing both of its overcounting mechanisms.
// * IPInfo-style census: weekly snapshots, which sweep up temporary
//   anycast that a daily census sees come and go.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/compare.hpp"
#include "census/census.hpp"
#include "topo/world.hpp"

namespace laces::analysis {

/// BGP-announced prefixes a BGPTools-style system would flag as anycast:
/// every announcement containing at least one anycast-based AT.
std::vector<net::Ipv4Prefix> simulate_bgptools(
    const topo::World& world, const PrefixSet& anycast_based_v4);

/// Classification of one /24 from our census's point of view.
enum class Slash24Class : std::uint8_t { kAnycast, kUnicast, kUnresponsive };

/// Classifies each /24 inside `bgp_prefix` using our census (GCD verdicts),
/// falling back to unresponsive for unallocated space.
Slash24Class classify_slash24(const census::DailyCensus& ours,
                              const net::Ipv4Prefix& slash24);

/// Table 7 row: BGPTools anycast prefixes of one size and the GCD-based
/// class mix of the /24s they cover.
struct PrefixSizeRow {
  std::uint8_t prefix_length = 24;
  std::size_t occurrence = 0;
  std::size_t anycast_24s = 0;
  std::size_t unicast_24s = 0;
  std::size_t unresponsive_24s = 0;
};

std::vector<PrefixSizeRow> bgptools_size_table(
    const census::DailyCensus& ours,
    const std::vector<net::Ipv4Prefix>& bgptools_prefixes);

/// v6 BGPTools census: every announced IPv6 prefix containing at least
/// one anycast-based AT (§5.7's second comparison).
std::vector<net::Ipv6Prefix> simulate_bgptools_v6(
    const topo::World& world, const PrefixSet& anycast_based_v6);

/// §5.7's v6 headline numbers.
struct BgpToolsV6Comparison {
  std::size_t bgptools_prefixes = 0;   // announced prefixes they mark
  std::size_t covered_by_ours = 0;     // of those, overlapping our census
  std::size_t our_gcd_total = 0;       // /48s we confirm
  std::size_t missed_by_bgptools = 0;  // our /48s not inside any marked pfx
};

BgpToolsV6Comparison compare_bgptools_v6(
    const std::vector<net::Ipv6Prefix>& bgptools, const PrefixSet& ours_gcd);

/// IPInfo-style weekly snapshot: prefixes that were anycast (ground truth)
/// on ANY day of the 7 days ending at `snapshot_day`, with a small
/// regional-anycast miss rate (commercial detection has fewer VPs in
/// remote regions).
PrefixSet simulate_ipinfo(const topo::World& world, std::uint32_t snapshot_day,
                          net::IpVersion version, std::uint64_t seed = 0x1bf0);

}  // namespace laces::analysis
