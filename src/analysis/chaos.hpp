// CHAOS-record analysis (paper §5.3.1, Appendix C, Figure 10).
//
// RFC 4892 CHAOS TXT answers disclose a per-site identity. Counting
// distinct values observed from all VPs gives a third, DNS-only site
// estimate — compared here against the anycast-based VP count and the
// GCD enumeration for the same nameservers.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/classify.hpp"
#include "core/results.hpp"
#include "gcd/classify.hpp"

namespace laces::analysis {

/// Distinct CHAOS values observed per census prefix.
using ChaosCounts =
    std::unordered_map<net::Prefix, std::unordered_set<std::string>,
                       net::PrefixHash>;

ChaosCounts chaos_counts(const core::MeasurementResults& chaos_results);

/// One Figure-10 point: the three site estimates for one nameserver prefix.
struct ChaosComparison {
  net::Prefix prefix;
  std::size_t chaos_values = 0;
  std::size_t anycast_based_vps = 0;
  std::size_t gcd_sites = 0;
};

/// Joins the three measurements over prefixes that answered CHAOS.
std::vector<ChaosComparison> chaos_comparison(
    const ChaosCounts& chaos, const core::AnycastClassification& anycast_based,
    const gcd::GcdClassification& gcd_results);

}  // namespace laces::analysis
