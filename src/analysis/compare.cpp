#include "analysis/compare.hpp"

#include <algorithm>

namespace laces::analysis {

PrefixSet canonical(PrefixSet prefixes) {
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  return prefixes;
}

PrefixSet set_intersection(const PrefixSet& a, const PrefixSet& b) {
  PrefixSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

PrefixSet set_difference(const PrefixSet& a, const PrefixSet& b) {
  PrefixSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

PrefixSet set_union(const PrefixSet& a, const PrefixSet& b) {
  PrefixSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool contains(const PrefixSet& set, const net::Prefix& p) {
  return std::binary_search(set.begin(), set.end(), p);
}

SetComparison compare(const PrefixSet& a, const PrefixSet& b) {
  SetComparison c;
  c.a_total = a.size();
  c.b_total = b.size();
  c.both = set_intersection(a, b).size();
  c.a_only = c.a_total - c.both;
  c.b_only = c.b_total - c.both;
  return c;
}

}  // namespace laces::analysis
