// Ground-truth evaluation (the role operator data plays in §5.8).
//
// Measurement code never sees the world's deployment registry; analysis
// code uses it here exactly where the paper uses operator ground truth:
// to label TP/FP/FN and to build the hypergiant table (Table 6).
#pragma once

#include <string>
#include <vector>

#include "analysis/compare.hpp"
#include "topo/world.hpp"

namespace laces::analysis {

/// Confusion counts of a detection set against ground truth over a probed
/// population.
struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;
  /// FPs explained by global-BGP-unicast prefixes (the Microsoft-style
  /// family of §5.1.3 — "mostly FPs ... these also contain TPs").
  std::size_t fp_global_bgp = 0;

  double recall() const {
    const auto denom = true_positive + false_negative;
    return denom == 0 ? 0.0 : static_cast<double>(true_positive) / denom;
  }
  double precision() const {
    const auto denom = true_positive + false_positive;
    return denom == 0 ? 0.0 : static_cast<double>(true_positive) / denom;
  }
};

/// Evaluates `detected` (prefixes classified anycast) against ground truth
/// over `probed` prefixes on `day`.
ConfusionMatrix evaluate(const topo::World& world, const PrefixSet& detected,
                         const PrefixSet& probed, std::uint32_t day);

/// Table 6 row: an origin AS and its anycast prefix counts.
struct OriginCount {
  std::string org_name;
  topo::Asn asn = 0;
  std::size_t v4_prefixes = 0;
  std::size_t v6_prefixes = 0;
};

/// Groups detected anycast prefixes by originating org, sorted by
/// v4 + v6 count descending (largest ASes first).
std::vector<OriginCount> origin_ranking(const topo::World& world,
                                        const PrefixSet& detected_v4,
                                        const PrefixSet& detected_v6,
                                        std::uint32_t day);

}  // namespace laces::analysis
