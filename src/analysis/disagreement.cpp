#include "analysis/disagreement.hpp"

namespace laces::analysis {

std::vector<VpCountBucket> vp_count_disagreement(
    const census::DailyCensus& census, net::Protocol protocol,
    std::size_t deployment_size) {
  struct Range {
    std::size_t lo, hi;  // inclusive lower, exclusive upper
    std::string label;
  };
  std::vector<Range> ranges = {
      {2, 3, "2"},   {3, 4, "3"},   {4, 5, "4"},   {5, 6, "5"},
      {6, 11, "5-10"},   {11, 16, "10-15"}, {16, 21, "15-20"},
      {21, 26, "20-25"}, {26, deployment_size + 1, "25-32"},
  };
  std::vector<VpCountBucket> buckets;
  for (const auto& r : ranges) {
    buckets.push_back(VpCountBucket{r.label, 0, 0, 0});
  }

  for (const auto& [prefix, rec] : census.records) {
    const auto it = rec.anycast_based.find(protocol);
    if (it == rec.anycast_based.end() ||
        it->second.verdict != core::Verdict::kAnycast) {
      continue;
    }
    const std::size_t vps = it->second.vp_count;
    for (std::size_t b = 0; b < ranges.size(); ++b) {
      if (vps >= ranges[b].lo && vps < ranges[b].hi) {
        ++buckets[b].candidates;
        if (rec.gcd_confirmed()) {
          ++buckets[b].gcd_confirmed;
        } else {
          ++buckets[b].not_confirmed;
        }
        break;
      }
    }
  }
  return buckets;
}

}  // namespace laces::analysis
