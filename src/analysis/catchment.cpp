#include "analysis/catchment.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "net/address.hpp"

namespace laces::analysis {

double CatchmentStats::top_share(std::size_t k) const {
  double total = 0.0;
  for (std::size_t i = 0; i < k && i < sites.size(); ++i) {
    total += sites[i].share;
  }
  return total;
}

double CatchmentStats::imbalance() const {
  if (sites.empty()) return 0.0;
  const double mean = 1.0 / static_cast<double>(sites.size());
  return sites.front().share / mean;
}

CatchmentStats catchment_stats(const core::MeasurementResults& results) {
  std::unordered_map<net::Prefix, net::WorkerId, net::PrefixHash> assignment;
  for (const auto& rec : results.records) {
    assignment.try_emplace(net::Prefix::of(rec.target), rec.rx_worker);
  }

  std::map<net::WorkerId, std::size_t> counts;
  for (const auto& [prefix, worker] : assignment) ++counts[worker];

  CatchmentStats stats;
  stats.responsive_prefixes = assignment.size();
  if (assignment.empty()) return stats;

  const double total = static_cast<double>(assignment.size());
  for (const auto& [worker, count] : counts) {
    stats.sites.push_back(SiteCatchment{
        worker, count, static_cast<double>(count) / total});
  }
  std::sort(stats.sites.begin(), stats.sites.end(),
            [](const SiteCatchment& a, const SiteCatchment& b) {
              return a.prefixes > b.prefixes;
            });

  if (stats.sites.size() > 1) {
    double entropy = 0.0;
    for (const auto& site : stats.sites) {
      entropy -= site.share * std::log2(site.share);
    }
    stats.normalized_entropy =
        entropy / std::log2(static_cast<double>(stats.sites.size()));
  } else {
    stats.normalized_entropy = 0.0;
  }
  return stats;
}

}  // namespace laces::analysis
