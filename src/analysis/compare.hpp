// Prefix-set algebra used by every comparison table.
#pragma once

#include <vector>

#include "net/address.hpp"

namespace laces::analysis {

using PrefixSet = std::vector<net::Prefix>;  // kept sorted & unique

/// Sorts and deduplicates in place, returning the canonical set.
PrefixSet canonical(PrefixSet prefixes);

PrefixSet set_intersection(const PrefixSet& a, const PrefixSet& b);
PrefixSet set_difference(const PrefixSet& a, const PrefixSet& b);
PrefixSet set_union(const PrefixSet& a, const PrefixSet& b);
bool contains(const PrefixSet& set, const net::Prefix& p);

/// Two-set comparison summary (the shape of Table 2/Table 4 rows).
struct SetComparison {
  std::size_t a_total = 0;
  std::size_t b_total = 0;
  std::size_t both = 0;
  std::size_t a_only = 0;
  std::size_t b_only = 0;
};

SetComparison compare(const PrefixSet& a, const PrefixSet& b);

}  // namespace laces::analysis
