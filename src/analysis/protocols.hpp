// Figures 6/7: protocol-intersection (UpSet-style) breakdown of the
// anycast-based detections for ICMP, TCP and UDP.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analysis/compare.hpp"

namespace laces::analysis {

/// One UpSet region: membership mask over {ICMP, TCP, UDP} and its
/// EXCLUSIVE count (prefixes in exactly those sets).
struct ProtocolRegion {
  bool icmp = false;
  bool tcp = false;
  bool udp = false;
  std::size_t count = 0;

  std::string label() const;
  /// Number of protocols in the region (1, 2 or 3).
  int arity() const { return int{icmp} + int{tcp} + int{udp}; }
};

struct ProtocolBreakdown {
  std::size_t icmp_total = 0;
  std::size_t tcp_total = 0;
  std::size_t udp_total = 0;
  std::size_t union_total = 0;
  /// The 7 non-empty membership regions, descending by count.
  std::vector<ProtocolRegion> regions;
};

ProtocolBreakdown protocol_breakdown(const PrefixSet& icmp,
                                     const PrefixSet& tcp,
                                     const PrefixSet& udp);

}  // namespace laces::analysis
