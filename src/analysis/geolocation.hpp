// GCD geolocation accuracy against ground truth (paper §5.8.1: "our GCD
// reported locations closely match reality, exceptions being multiple
// sites in a single city or nearby cities ... detected as a single site").
#pragma once

#include "gcd/classify.hpp"
#include "topo/world.hpp"

namespace laces::analysis {

struct GeolocationAccuracy {
  std::size_t prefixes_evaluated = 0;
  std::size_t sites_evaluated = 0;
  /// Great-circle error from each estimated site to the nearest true PoP.
  double mean_error_km = 0.0;
  double median_error_km = 0.0;
  /// Fraction of estimated sites within 100 / 500 km of a true PoP.
  double within_100km = 0.0;
  double within_500km = 0.0;
  /// Mean (estimated sites / true PoPs) — the under-enumeration factor.
  double enumeration_ratio = 0.0;
};

/// Compares every GCD-anycast prefix's estimated site cities against the
/// ground-truth PoP cities of the deployment serving the prefix on `day`.
GeolocationAccuracy evaluate_geolocation(const topo::World& world,
                                         const gcd::GcdClassification& gcd,
                                         std::uint32_t day);

}  // namespace laces::analysis
