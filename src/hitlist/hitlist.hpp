// Hitlist construction (paper §4.2.3).
//
// The real pipeline uses ISI's ranked IPv4 hitlist (one representative,
// ping-responsive address per /24), TU Munich's IPv6 hitlist, and
// OpenINTEL-derived nameserver addresses, preferring nameserver IPs as the
// /24 representative for DNS censuses. Here the same structures are built
// from the simulated world's allocation registry.
#pragma once

#include <cstdint>
#include <vector>

#include "net/address.hpp"
#include "topo/world.hpp"

namespace laces::hitlist {

struct Entry {
  net::IpAddress address;
  bool is_nameserver = false;
};

/// An ordered list of probe targets, one representative per census prefix.
class Hitlist {
 public:
  Hitlist() = default;
  explicit Hitlist(std::vector<Entry> entries) : entries_(std::move(entries)) {}

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Plain address list (what gets streamed to workers).
  std::vector<net::IpAddress> addresses() const;

  /// Deterministically shuffled copy (probing politeness: consecutive
  /// probes should not walk one network).
  Hitlist shuffled(std::uint64_t seed) const;

  /// First `n` entries (sampling / tests).
  Hitlist head(std::size_t n) const;

 private:
  std::vector<Entry> entries_;
};

/// ISI/TUM-style hitlist: each census prefix's representative address.
Hitlist build_ping_hitlist(const topo::World& world, net::IpVersion version);

/// DNS-census hitlist: nameserver addresses preferred as representatives
/// of their prefix (OpenINTEL merge).
Hitlist build_dns_hitlist(const topo::World& world, net::IpVersion version);

/// All nameserver addresses (the §5.3.1/Appendix C CHAOS study population).
Hitlist build_nameserver_hitlist(const topo::World& world,
                                 net::IpVersion version);

}  // namespace laces::hitlist
