#include "hitlist/hitlist.hpp"

#include <algorithm>
#include <optional>

#include <unordered_map>

#include "util/rng.hpp"

namespace laces::hitlist {

std::vector<net::IpAddress> Hitlist::addresses() const {
  std::vector<net::IpAddress> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.address);
  return out;
}

Hitlist Hitlist::shuffled(std::uint64_t seed) const {
  auto copy = entries_;
  Rng rng(seed);
  shuffle(copy, rng);
  return Hitlist(std::move(copy));
}

Hitlist Hitlist::head(std::size_t n) const {
  auto copy = entries_;
  if (copy.size() > n) copy.resize(n);
  return Hitlist(std::move(copy));
}

Hitlist build_ping_hitlist(const topo::World& world, net::IpVersion version) {
  std::vector<Entry> entries;
  for (const auto& t : world.targets()) {
    if (t.representative && t.address.version() == version) {
      entries.push_back(Entry{t.address, t.responder.dns});
    }
  }
  return Hitlist(std::move(entries));
}

Hitlist build_dns_hitlist(const topo::World& world, net::IpVersion version) {
  // One entry per census prefix; a DNS-capable address beats the plain
  // representative (the OpenINTEL-preference rule of §4.2.3).
  struct Candidates {
    std::optional<Entry> representative;
    std::optional<Entry> nameserver;
  };
  std::unordered_map<net::Prefix, Candidates, net::PrefixHash> per_prefix;
  for (const auto& t : world.targets()) {
    if (t.address.version() != version) continue;
    auto& cand = per_prefix[net::Prefix::of(t.address)];
    if (t.responder.dns && !cand.nameserver) {
      cand.nameserver = Entry{t.address, true};
    }
    if (t.representative) cand.representative = Entry{t.address, t.responder.dns};
  }
  std::vector<Entry> entries;
  entries.reserve(per_prefix.size());
  for (auto& [prefix, cand] : per_prefix) {
    if (cand.nameserver) {
      entries.push_back(*cand.nameserver);
    } else if (cand.representative) {
      entries.push_back(*cand.representative);
    }
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.address < b.address; });
  return Hitlist(std::move(entries));
}

Hitlist build_nameserver_hitlist(const topo::World& world,
                                 net::IpVersion version) {
  std::vector<Entry> entries;
  for (const auto& t : world.targets()) {
    if (t.address.version() == version && t.responder.dns) {
      entries.push_back(Entry{t.address, true});
    }
  }
  return Hitlist(std::move(entries));
}

}  // namespace laces::hitlist
