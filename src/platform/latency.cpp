#include "platform/latency.hpp"

#include <string>
#include <unordered_map>

#include "net/probe.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace laces::platform {
namespace {

constexpr std::size_t kChunk = 256;

struct VpState {
  std::uint32_t index = 0;
  const VantagePoint* vp = nullptr;
  net::IpAddress source;
  std::uint64_t interface_id = 0;
  std::unordered_map<std::uint64_t, SimTime> pending;
};

}  // namespace

LatencyResults measure_latency(topo::SimNetwork& network,
                               const UnicastPlatform& platform,
                               const std::vector<net::IpAddress>& targets,
                               const LatencyOptions& options) {
  LatencyResults results;
  if (targets.empty()) return results;
  const net::IpVersion version = targets.front().version();
  auto& events = network.events();

  obs::Tracer::global().set_clock(&events);
  obs::Span span("platform.latency");
  const std::string protocol(net::metric_label(options.protocol));
  span.set_attr("protocol", protocol);
  span.set_attr("targets", std::to_string(targets.size()));
  auto& registry = obs::Registry::global();
  obs::Counter& samples_counter =
      registry.counter("laces_platform_rtt_samples_total");
  obs::Histogram& rtt_histogram =
      registry.histogram("laces_platform_rtt_ms", obs::rtt_ms_buckets());

  // Availability draw: which VPs take part in this run.
  std::vector<VpState> active;
  for (std::uint32_t i = 0; i < platform.vps.size(); ++i) {
    const auto& vp = platform.vps[i];
    StableHash h(options.run_seed ^ 0xa7a5);
    h.mix(std::uint64_t{i}).mix(vp.name);
    if (h.unit() >= vp.availability) continue;
    VpState state;
    state.index = i;
    state.vp = &vp;
    state.source =
        version == net::IpVersion::kV4 ? vp.address_v4 : vp.address_v6;
    active.push_back(std::move(state));
  }
  for (const auto& s : active) results.active_vps.push_back(s.index);
  registry.gauge("laces_platform_active_vps")
      .set(static_cast<double>(active.size()));
  if (active.empty()) return results;

  // Capture handlers: each VP sees only responses to its own address.
  auto states = std::make_shared<std::vector<VpState>>(std::move(active));
  auto* results_ptr = &results;
  for (auto& state : *states) {
    VpState* sp = &state;
    state.interface_id = network.attach(
        state.source, state.vp->attach,
        [sp, results_ptr, &network, &options, &samples_counter,
         &rtt_histogram](const net::Datagram& dgram, SimTime rx) {
          const auto parsed =
              net::parse_response(dgram, options.measurement_id);
          if (!parsed) return;
          const auto it = sp->pending.find(net::hash_value(parsed->target));
          if (it == sp->pending.end()) return;
          const double rtt_ms = (rx - it->second).to_millis();
          results_ptr->samples.push_back(
              RttSample{parsed->target, sp->index, rtt_ms});
          samples_counter.add();
          rtt_histogram.observe(rtt_ms);
          sp->pending.erase(it);
          (void)network;
        });
  }

  // Chunked scheduling keeps the event queue small on large hitlists.
  const double rate = std::max(1.0, options.targets_per_second);
  const SimTime t0 = events.now();
  auto send_probe = [states, &network, &options](std::size_t vp_slot,
                                                 net::IpAddress target) {
    auto& s = (*states)[vp_slot];
    net::ProbeEncoding enc;
    enc.measurement = options.measurement_id;
    enc.worker = static_cast<net::WorkerId>(s.index);
    enc.tx_time_ns = network.now().ns();
    enc.salt = static_cast<std::uint32_t>(
        StableHash(0x5a17).mix(net::hash_value(target)).mix(std::uint64_t{s.index}).value());
    net::Datagram probe;
    switch (options.protocol) {
      case net::Protocol::kIcmp:
        probe = net::build_icmp_probe(s.source, target, enc);
        break;
      case net::Protocol::kTcp:
        probe = net::build_tcp_probe(s.source, target, enc);
        break;
      case net::Protocol::kUdpDns:
        probe = net::build_dns_probe(s.source, target, enc);
        break;
    }
    s.pending[net::hash_value(target)] = network.now();
    network.send(probe, s.vp->attach);
  };

  const std::size_t chunk_count = (targets.size() + kChunk - 1) / kChunk;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const SimTime chunk_time =
        t0 + SimDuration::from_seconds(static_cast<double>(c * kChunk) / rate);
    events.schedule_at(chunk_time, [c, &targets, states, send_probe, &events,
                                    &options, rate, t0]() {
      const std::size_t begin = c * kChunk;
      const std::size_t end = std::min(begin + kChunk, targets.size());
      for (std::size_t j = begin; j < end; ++j) {
        const SimTime base =
            t0 + SimDuration::from_seconds(static_cast<double>(j) / rate);
        for (std::size_t v = 0; v < states->size(); ++v) {
          const net::IpAddress target = targets[j];
          events.schedule_at(
              base + options.vp_offset * static_cast<std::int64_t>(v),
              [v, target, send_probe]() { send_probe(v, target); });
        }
      }
    });
  }

  network.run_events();

  for (auto& state : *states) network.detach(state.interface_id);
  results.probes_sent =
      static_cast<std::uint64_t>(states->size()) * targets.size();
  results.credits_used =
      static_cast<double>(results.probes_sent) * platform.credits_per_probe;
  registry
      .counter("laces_platform_probes_sent_total", {{"protocol", protocol}})
      .add(results.probes_sent);
  return results;
}

}  // namespace laces::platform
