// AS-level traceroute (the scamper capability used in §5.1.3 to confirm
// that global-BGP-unicast probes ingress at distinct nearby PoPs, and the
// §6 future-work path toward traceroute-based enumeration).
//
// The simulator models routing at AS granularity, so a traceroute reveals
// the AS-level path from the vantage point's upstream to the PoP serving
// the target — including, for global-BGP-unicast deployments, the internal
// leg from the ingress PoP to the home server.
#pragma once

#include <optional>
#include <vector>

#include "geo/cities.hpp"
#include "net/address.hpp"
#include "topo/world.hpp"

namespace laces::platform {

struct TracerouteHop {
  topo::AsId as_id = 0;
  topo::Asn asn = 0;
  geo::CityId city = 0;       // the AS's home metro
  bool internal = false;      // inside the target deployment's backbone
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  /// The PoP where the probe entered the target's network.
  std::optional<geo::CityId> ingress_city;
  /// The PoP that actually served the probe (== ingress except for
  /// global-BGP-unicast, where it is the home server's site).
  std::optional<geo::CityId> serving_city;
  bool reached = false;
};

/// Trace from `from` toward `target` on `day`. Unresponsive or unallocated
/// targets yield reached = false with the partial path.
TracerouteResult traceroute(const topo::World& world,
                            const topo::AttachPoint& from,
                            const net::IpAddress& target, std::uint32_t day);

}  // namespace laces::platform
