#include "platform/traceroute.hpp"

namespace laces::platform {

TracerouteResult traceroute(const topo::World& world,
                            const topo::AttachPoint& from,
                            const net::IpAddress& target, std::uint32_t day) {
  TracerouteResult result;
  const topo::Target* t = world.find_target(target);
  if (t == nullptr) return result;

  const auto& dep = world.deployment(t->deployment);
  // The same catchment decision a probe would get (flow headers are static
  // for traceroute packets too; no per-packet variation).
  const auto choice = world.routing().select_pop(
      from, dep, day, SimTime::epoch(), /*flow_hash=*/0x7e0c, /*seq=*/0);
  const auto& ingress = dep.pops[choice.pop_index];

  // External leg: AS path from the VP's upstream to the ingress PoP's
  // upstream AS.
  for (const auto as_id :
       world.as_graph().path(from.upstream, ingress.attach.upstream)) {
    const auto& node = world.as_graph().node(as_id);
    result.hops.push_back(TracerouteHop{as_id, node.asn, node.home, false});
  }
  result.ingress_city = ingress.attach.city;
  result.serving_city = ingress.attach.city;

  // Internal leg: global-BGP-unicast serves from its home PoP.
  if (dep.kind == topo::DeploymentKind::kGlobalBgpUnicast &&
      dep.home_pop != choice.pop_index) {
    const auto& home = dep.pops[dep.home_pop];
    result.hops.push_back(TracerouteHop{home.attach.upstream,
                                        world.as_graph().node(home.attach.upstream).asn,
                                        home.attach.city, true});
    result.serving_city = home.attach.city;
  }

  // Does the serving host answer at all? Traceroute's last hop needs an
  // ICMP TTL-exceeded or echo reply; fully silent targets never complete.
  result.reached = t->responder.icmp && !world.target_down(*t, day);
  return result;
}

}  // namespace laces::platform
