// Latency measurements from unicast vantage points (the scamper-on-Ark and
// RIPE Atlas role in the pipeline, §4.2).
//
// Every available VP sends one probe per target from its own unicast
// address; responses return to that VP only, and the RTT feeds the GCD
// analysis. Probes to one target are spaced across VPs so target-side rate
// limiting is not triggered (responsible probing, R3).
#pragma once

#include <cstdint>
#include <vector>

#include "net/probe.hpp"
#include "net/protocol.hpp"
#include "platform/platform.hpp"
#include "topo/network.hpp"

namespace laces::platform {

struct LatencyOptions {
  net::Protocol protocol = net::Protocol::kIcmp;
  /// Hitlist pacing (targets entering the measurement per second).
  double targets_per_second = 2000.0;
  /// Spacing between different VPs probing the same target.
  SimDuration vp_offset = SimDuration::millis(200);
  net::MeasurementId measurement_id = 0x6cd;
  /// Seed for per-run VP availability draws (RIPE Atlas jitter).
  std::uint64_t run_seed = 1;
};

struct RttSample {
  net::IpAddress target;
  std::uint32_t vp_index = 0;  // index into the platform's VP list
  double rtt_ms = 0.0;
};

struct LatencyResults {
  std::vector<RttSample> samples;
  std::uint64_t probes_sent = 0;
  double credits_used = 0.0;
  /// VPs that actually participated in this run.
  std::vector<std::uint32_t> active_vps;
};

/// Runs the measurement to completion on the simulated event loop.
LatencyResults measure_latency(topo::SimNetwork& network,
                               const UnicastPlatform& platform,
                               const std::vector<net::IpAddress>& targets,
                               const LatencyOptions& options = {});

}  // namespace laces::platform
