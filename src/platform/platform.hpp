// Measurement platforms (paper §4.2.1, Table 1).
//
// * AnycastPlatform — a set of sites that all announce one anycast address
//   per family plus per-site unicast addresses: the MAnycastR production
//   deployment (32 Vultr metros), the ccTLD deployment (12 sites), and the
//   reduced deployments of Table 5.
// * UnicastPlatform — geographically distributed unicast vantage points:
//   CAIDA Ark (163 production / 227 development / 118 IPv6 nodes) and
//   RIPE-Atlas-style sets (481 nodes, 100 km minimum spacing, availability
//   jitter, credit-cost accounting).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/cities.hpp"
#include "net/address.hpp"
#include "topo/world.hpp"

namespace laces::platform {

/// One anycast site (future Worker location).
struct Site {
  std::string name;           // e.g. "ams" for Amsterdam
  geo::CityId city = 0;
  topo::AttachPoint attach;
  net::IpAddress unicast_v4;  // per-site source for GCD probing
  net::IpAddress unicast_v6;
};

/// An anycast measurement deployment.
struct AnycastPlatform {
  std::string name;
  std::vector<Site> sites;
  net::IpAddress anycast_v4;
  net::IpAddress anycast_v6;

  net::IpAddress anycast_address(net::IpVersion version) const {
    return version == net::IpVersion::kV4 ? anycast_v4 : anycast_v6;
  }
};

/// One unicast vantage point of a latency-measurement platform.
struct VantagePoint {
  std::string name;
  geo::CityId city = 0;
  topo::AttachPoint attach;
  net::IpAddress address_v4;
  net::IpAddress address_v6;
  /// Probability this VP participates in any given measurement (RIPE Atlas
  /// nodes come and go; Ark nodes are reliable).
  double availability = 1.0;
};

/// A set of unicast VPs (Ark / RIPE Atlas).
struct UnicastPlatform {
  std::string name;
  std::vector<VantagePoint> vps;
  /// Per-probe cost in platform credits (Atlas economics, Appendix A).
  double credits_per_probe = 0.0;
};

/// The 32-site production deployment on the Vultr metros of §4.2.1.
AnycastPlatform make_production_deployment(const topo::World& world);

/// The 12-site ccTLD-registry deployment of §5.4.
AnycastPlatform make_cctld_deployment(const topo::World& world);

/// Table 5's reduced deployments, selected from `base`:
/// two VPs (EU + NA), one per continent, and two per continent with
/// maximized geographic spread.
AnycastPlatform select_eu_na(const AnycastPlatform& base);
AnycastPlatform select_per_continent(const AnycastPlatform& base,
                                     std::size_t per_continent);

/// Ark-style platform with `count` nodes; deterministic in `seed`.
/// Spreads nodes worldwide with mild population weighting. If
/// `force_v6_filtering_vps` > 0, that many nodes are attached to
/// /48-filtering ASes (reproduces the Fastly misclassification of §5.8.2).
UnicastPlatform make_ark(const topo::World& world, std::size_t count,
                         std::uint64_t seed,
                         std::size_t force_v6_filtering_vps = 0);

/// RIPE-Atlas-style platform: up to `count` candidate nodes thinned to a
/// minimum pairwise distance, with per-node availability < 1.
UnicastPlatform make_atlas(const topo::World& world, std::size_t count,
                           double min_distance_km, std::uint64_t seed);

/// Keep only VPs at least `min_distance_km` apart (greedy, keeps earlier
/// VPs first) — the Figure 8 thinning sweep.
UnicastPlatform thin_by_distance(const UnicastPlatform& platform,
                                 double min_distance_km);

/// The anycast deployment's sites as unicast vantage points (MAnycastR's
/// built-in GCD mode probes from the workers' unicast addresses, §4.1.3).
UnicastPlatform unicast_view(const AnycastPlatform& platform);

}  // namespace laces::platform
