#include "platform/platform.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace laces::platform {
namespace {

// Measurement-infrastructure address space, disjoint from the simulated
// world's allocations (which grow upward from 1.0.0.0 / 2001:db8::).
constexpr std::uint32_t kAnycastV4 = 0xCB007101;       // 203.0.113.1
constexpr std::uint32_t kCctldAnycastV4 = 0xCB007201;  // 203.0.114.1
constexpr std::uint32_t kSiteUnicastV4Base = 0xC6336400;  // 198.51.100.0
constexpr std::uint32_t kVpUnicastV4Base = 0x64400000;    // 100.64.0.0
constexpr std::uint64_t kAnycastV6Hi = 0x3fff00000000ffffULL;
constexpr std::uint64_t kCctldAnycastV6Hi = 0x3fff00000000fffeULL;
constexpr std::uint64_t kSiteUnicastV6Hi = 0x3fff000000000001ULL;
constexpr std::uint64_t kVpUnicastV6Hi = 0x3fff000000000002ULL;

/// The 32 Vultr metros of the production deployment [Vultr 2024].
constexpr std::array<const char*, 32> kVultrCities = {
    "Amsterdam", "Atlanta",   "Bangalore", "Chicago",     "Dallas",
    "Delhi",     "Frankfurt", "Honolulu",  "Johannesburg", "London",
    "Los Angeles", "Madrid",  "Manchester", "Melbourne",  "Mexico City",
    "Miami",     "Mumbai",    "Newark",    "Osaka",       "Paris",
    "Sao Paulo", "Santiago",  "Seattle",   "Seoul",       "San Jose",
    "Singapore", "Stockholm", "Sydney",    "Tel Aviv",    "Tokyo",
    "Toronto",   "Warsaw"};

/// The 12-site ccTLD registry deployment (regionally weighted toward
/// Europe, as such operators typically are).
constexpr std::array<const char*, 12> kCctldCities = {
    "Amsterdam", "Frankfurt", "London", "Stockholm", "Vienna", "Lisbon",
    "Newark",    "Los Angeles", "Sao Paulo", "Singapore", "Tokyo", "Sydney"};

Site make_site(const topo::World& world, std::string_view city_name,
               std::size_t index, std::uint32_t unicast_base,
               std::uint64_t unicast_v6_hi) {
  const auto id = geo::find_city(city_name);
  expects(id.has_value(), "platform city exists in the database");
  Site site;
  site.name = std::string(city_name);
  site.city = *id;
  site.attach = topo::AttachPoint{*id, world.transit_near(*id)};
  site.unicast_v4 = net::Ipv4Address(
      unicast_base + static_cast<std::uint32_t>(index) + 1);
  site.unicast_v6 =
      net::Ipv6Address(unicast_v6_hi, static_cast<std::uint64_t>(index) + 1);
  return site;
}

}  // namespace

AnycastPlatform make_production_deployment(const topo::World& world) {
  AnycastPlatform p;
  p.name = "MAnycastR production";
  p.anycast_v4 = net::Ipv4Address(kAnycastV4);
  p.anycast_v6 = net::Ipv6Address(kAnycastV6Hi, 1);
  for (std::size_t i = 0; i < kVultrCities.size(); ++i) {
    p.sites.push_back(make_site(world, kVultrCities[i], i, kSiteUnicastV4Base,
                                kSiteUnicastV6Hi));
  }
  return p;
}

AnycastPlatform make_cctld_deployment(const topo::World& world) {
  AnycastPlatform p;
  p.name = "ccTLD registry";
  p.anycast_v4 = net::Ipv4Address(kCctldAnycastV4);
  p.anycast_v6 = net::Ipv6Address(kCctldAnycastV6Hi, 1);
  for (std::size_t i = 0; i < kCctldCities.size(); ++i) {
    p.sites.push_back(make_site(world, kCctldCities[i], i + 64,
                                kSiteUnicastV4Base, kSiteUnicastV6Hi));
  }
  return p;
}

AnycastPlatform select_eu_na(const AnycastPlatform& base) {
  AnycastPlatform p = base;
  p.name = "EU-NA";
  p.sites.clear();
  for (const auto& s : base.sites) {
    if (s.name == "Amsterdam" || s.name == "Newark") p.sites.push_back(s);
  }
  expects(p.sites.size() == 2, "EU-NA pair present");
  return p;
}

AnycastPlatform select_per_continent(const AnycastPlatform& base,
                                     std::size_t per_continent) {
  expects(per_continent >= 1 && per_continent <= 2, "1 or 2 per continent");
  AnycastPlatform p = base;
  p.name = per_continent == 1 ? "1-per-continent" : "2-per-continent";
  p.sites.clear();

  std::map<geo::Continent, std::vector<const Site*>> by_continent;
  for (const auto& s : base.sites) {
    by_continent[geo::city(s.city).continent].push_back(&s);
  }
  for (auto& [continent, sites] : by_continent) {
    // First pick: the site receiving the most traffic is approximated by
    // the most populous metro on the continent.
    const Site* first = *std::max_element(
        sites.begin(), sites.end(), [](const Site* a, const Site* b) {
          return geo::city(a->city).population < geo::city(b->city).population;
        });
    p.sites.push_back(*first);
    if (per_continent == 2 && sites.size() > 1) {
      // Second pick: maximize geographic distance from the first.
      const Site* second = *std::max_element(
          sites.begin(), sites.end(), [&](const Site* a, const Site* b) {
            return geo::distance_km(geo::city(a->city).location,
                                    geo::city(first->city).location) <
                   geo::distance_km(geo::city(b->city).location,
                                    geo::city(first->city).location);
          });
      if (second != first) p.sites.push_back(*second);
    }
  }
  return p;
}

UnicastPlatform make_ark(const topo::World& world, std::size_t count,
                         std::uint64_t seed,
                         std::size_t force_v6_filtering_vps) {
  UnicastPlatform p;
  p.name = "Ark-" + std::to_string(count);
  Rng rng(seed ^ 0xa21c);
  const auto cities = geo::world_cities();

  // Sample distinct cities with mild population weighting; Ark nodes sit
  // in academic/infrastructure hubs worldwide.
  std::vector<geo::CityId> picked;
  std::vector<bool> used(cities.size(), false);
  double total = 0;
  for (const auto& c : cities) total += std::sqrt(double(c.population));
  while (picked.size() < std::min(count, cities.size())) {
    double roll = rng.uniform(0.0, total);
    for (std::size_t i = 0; i < cities.size(); ++i) {
      roll -= std::sqrt(double(cities[i].population));
      if (roll <= 0) {
        if (!used[i]) {
          used[i] = true;
          picked.push_back(static_cast<geo::CityId>(i));
        }
        break;
      }
    }
  }
  // If more nodes than cities are requested, wrap around (two nodes in one
  // metro is realistic for Ark).
  for (std::size_t i = 0; picked.size() < count; ++i) {
    picked.push_back(static_cast<geo::CityId>(i % cities.size()));
  }

  // Collect /48-filtering transit ASes for the forced-misclassification VPs.
  std::vector<topo::AsId> filtering;
  for (topo::AsId a = 0; a < world.as_graph().size(); ++a) {
    if (world.filters_v6_specifics(a)) filtering.push_back(a);
  }

  for (std::size_t i = 0; i < picked.size(); ++i) {
    VantagePoint vp;
    vp.name = "ark-" + std::to_string(i);
    vp.city = picked[i];
    vp.attach = topo::AttachPoint{picked[i], world.transit_near(picked[i])};
    if (i < force_v6_filtering_vps && !filtering.empty()) {
      vp.attach.upstream = filtering[i % filtering.size()];
    }
    vp.address_v4 = net::Ipv4Address(kVpUnicastV4Base +
                                     static_cast<std::uint32_t>(i) + 1);
    vp.address_v6 =
        net::Ipv6Address(kVpUnicastV6Hi, static_cast<std::uint64_t>(i) + 1);
    vp.availability = 1.0;  // Ark is reliable (the reason the paper uses it)
    p.vps.push_back(std::move(vp));
  }
  p.credits_per_probe = 0.0;
  return p;
}

UnicastPlatform make_atlas(const topo::World& world, std::size_t count,
                           double min_distance_km, std::uint64_t seed) {
  // Start from a large Ark-style sample, thin to the distance bound, then
  // cap and add availability jitter.
  UnicastPlatform dense = make_ark(world, count * 2, seed ^ 0x47a5, 0);
  dense.name = "RIPE-Atlas";
  UnicastPlatform thinned = thin_by_distance(dense, min_distance_km);
  if (thinned.vps.size() > count) thinned.vps.resize(count);
  Rng rng(seed ^ 0x47a5f00d);
  for (std::size_t i = 0; i < thinned.vps.size(); ++i) {
    thinned.vps[i].name = "atlas-" + std::to_string(i);
    thinned.vps[i].availability = 0.85 + rng.uniform(0.0, 0.13);
  }
  thinned.name = "RIPE-Atlas";
  thinned.credits_per_probe = 160.0;  // ~RTT measurement cost in credits
  return thinned;
}

UnicastPlatform unicast_view(const AnycastPlatform& platform) {
  UnicastPlatform out;
  out.name = platform.name + " (unicast view)";
  for (const auto& site : platform.sites) {
    VantagePoint vp;
    vp.name = site.name;
    vp.city = site.city;
    vp.attach = site.attach;
    vp.address_v4 = site.unicast_v4;
    vp.address_v6 = site.unicast_v6;
    vp.availability = 1.0;
    out.vps.push_back(std::move(vp));
  }
  return out;
}

UnicastPlatform thin_by_distance(const UnicastPlatform& platform,
                                 double min_distance_km) {
  UnicastPlatform out;
  out.name = platform.name;
  out.credits_per_probe = platform.credits_per_probe;
  for (const auto& vp : platform.vps) {
    const bool far_enough = std::all_of(
        out.vps.begin(), out.vps.end(), [&](const VantagePoint& kept) {
          return geo::distance_km(geo::city(kept.city).location,
                                  geo::city(vp.city).location) >=
                 min_distance_km;
        });
    if (far_enough) out.vps.push_back(vp);
  }
  return out;
}

}  // namespace laces::platform
