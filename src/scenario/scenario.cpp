#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "net/protocol.hpp"
#include "util/rng.hpp"

namespace laces::scenario {
namespace {

constexpr RegimeKind kAllRegimeKinds[] = {
    RegimeKind::kDiurnal,   RegimeKind::kStorm,    RegimeKind::kThrottle,
    RegimeKind::kSkew,      RegimeKind::kRouteFlip, RegimeKind::kPathLoss,
    RegimeKind::kChurn};

constexpr const char* kContext = "scenario spec";

[[noreturn]] void bad_spec(std::string_view full, std::string_view token,
                           const std::string& what) {
  const auto [line, column] = fault::spec_position(full, token);
  throw std::invalid_argument(std::string(kContext) + ":" +
                              std::to_string(line) + ":" +
                              std::to_string(column) + ": " + what);
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

double parse_double(std::string_view full, std::string_view token,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(token), &used);
    if (used != token.size()) throw std::invalid_argument("");
    return v;
  } catch (const std::exception&) {
    bad_spec(full, token,
             std::string("bad ") + what + " '" + std::string(token) + "'");
  }
}

long parse_long(std::string_view full, std::string_view token,
                const char* what) {
  try {
    std::size_t used = 0;
    const long v = std::stol(std::string(token), &used);
    if (used != token.size()) throw std::invalid_argument("");
    return v;
  } catch (const std::exception&) {
    bad_spec(full, token,
             std::string("bad ") + what + " '" + std::string(token) + "'");
  }
}

/// `days=3`, `days=2-5`, `days=all`.
void parse_days(std::string_view full, std::string_view value, Regime& regime) {
  if (value == "all") {
    regime.day_first = 1;
    regime.day_last = kAllDays;
    return;
  }
  std::string_view first = value;
  std::string_view last = value;
  if (const std::size_t dash = value.find('-');
      dash != std::string_view::npos) {
    first = value.substr(0, dash);
    last = value.substr(dash + 1);
  }
  const long a = parse_long(full, first, "day");
  const long b = parse_long(full, last, "day");
  if (a < 1 || b < a) bad_spec(full, value, "days range must be 1 <= A <= B");
  regime.day_first = static_cast<std::uint32_t>(a);
  regime.day_last = static_cast<std::uint32_t>(b);
}

/// `proto=icmp+dns` — the protocols the skewed worker CANNOT send.
std::uint8_t parse_proto_mask(std::string_view full, std::string_view value) {
  std::uint8_t mask = 0;
  std::string_view rest = value;
  while (!rest.empty()) {
    const std::size_t plus = rest.find('+');
    const std::string_view name = trim(rest.substr(0, plus));
    rest = plus == std::string_view::npos ? std::string_view{}
                                          : rest.substr(plus + 1);
    if (name == "icmp") {
      mask |= 1u << static_cast<std::uint8_t>(net::Protocol::kIcmp);
    } else if (name == "tcp") {
      mask |= 1u << static_cast<std::uint8_t>(net::Protocol::kTcp);
    } else if (name == "dns") {
      mask |= 1u << static_cast<std::uint8_t>(net::Protocol::kUdpDns);
    } else {
      bad_spec(full, name, "unknown protocol '" + std::string(name) +
                               "' (icmp, tcp, dns)");
    }
  }
  return mask;
}

std::string proto_mask_to_string(std::uint8_t mask) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (mask & (1u << static_cast<std::uint8_t>(net::Protocol::kIcmp))) {
    append("icmp");
  }
  if (mask & (1u << static_cast<std::uint8_t>(net::Protocol::kTcp))) {
    append("tcp");
  }
  if (mask & (1u << static_cast<std::uint8_t>(net::Protocol::kUdpDns))) {
    append("dns");
  }
  return out;
}

std::string format_ns(std::int64_t ns) { return std::to_string(ns) + "ns"; }

Regime parse_regime(std::string_view full, std::string_view clause,
                    RegimeKind kind, std::size_t at_pos) {
  Regime regime;
  regime.kind = kind;

  std::string_view rest = clause.substr(at_pos + 1);
  std::string_view times = rest;
  std::string_view params;
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    times = rest.substr(0, colon);
    params = rest.substr(colon + 1);
  }
  std::string_view start = times;
  if (const std::size_t plus = times.find('+');
      plus != std::string_view::npos) {
    start = times.substr(0, plus);
    regime.duration = fault::parse_spec_duration(
        full, trim(times.substr(plus + 1)), kContext);
  }
  regime.at = fault::parse_spec_duration(full, trim(start), kContext);

  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    std::string_view kv = trim(params.substr(0, comma));
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) bad_spec(full, kv, "parameter needs '='");
    const std::string_view key = trim(kv.substr(0, eq));
    const std::string_view value = trim(kv.substr(eq + 1));
    if (key == "days") {
      parse_days(full, value, regime);
    } else if (key == "site") {
      if (value == "all") {
        regime.site = fault::kAllSites;
      } else {
        const long site = parse_long(full, value, "site");
        if (site < 0) bad_spec(full, value, "site index must be >= 0");
        regime.site = static_cast<int>(site);
      }
    } else if (key == "count") {
      const long count = parse_long(full, value, "count");
      if (count < 1) bad_spec(full, value, "count must be >= 1");
      regime.count = static_cast<int>(count);
    } else if (key == "p") {
      regime.p = parse_double(full, value, "probability");
      if (regime.p < 0.0 || regime.p > 1.0) {
        bad_spec(full, value, "probability out of [0,1]");
      }
    } else if (key == "frac") {
      regime.fraction = parse_double(full, value, "fraction");
      if (regime.fraction < 0.0 || regime.fraction > 1.0) {
        bad_spec(full, value, "fraction out of [0,1]");
      }
    } else if (key == "mag") {
      regime.mag = fault::parse_spec_duration(full, value, kContext);
    } else if (key == "proto") {
      regime.proto_mask = parse_proto_mask(full, value);
    } else {
      bad_spec(full, key, "unknown parameter '" + std::string(key) + "'");
    }
  }

  if (kind == RegimeKind::kSkew && regime.proto_mask == 0) {
    bad_spec(full, clause, "skew needs proto=<icmp|tcp|dns[+...]>");
  }
  if (kind == RegimeKind::kSkew &&
      regime.proto_mask == 0x7) {
    bad_spec(full, clause, "skew must leave at least one protocol enabled");
  }
  if (kind == RegimeKind::kStorm && regime.mag.ns() <= 0) {
    bad_spec(full, clause, "storm needs mag=<mean re-join delay>");
  }
  if (kind == RegimeKind::kDiurnal && regime.duration.ns() <= 0) {
    bad_spec(full, clause, "diurnal needs an explicit +duration window");
  }
  return regime;
}

void append_double(std::string& out, const char* key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  if (!out.empty()) out += ',';
  out += key;
  out += '=';
  out += buf;
}

}  // namespace

std::string_view to_string(RegimeKind kind) {
  switch (kind) {
    case RegimeKind::kDiurnal: return "diurnal";
    case RegimeKind::kStorm: return "storm";
    case RegimeKind::kThrottle: return "throttle";
    case RegimeKind::kSkew: return "skew";
    case RegimeKind::kRouteFlip: return "route-flip";
    case RegimeKind::kPathLoss: return "path-loss";
    case RegimeKind::kChurn: return "churn";
  }
  return "unknown";
}

std::optional<RegimeKind> regime_kind_from_string(std::string_view name) {
  for (const RegimeKind kind : kAllRegimeKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

bool Scenario::may_degrade(std::uint32_t day) const {
  // Control-plane faults use absolute sim times the scenario cannot map to
  // day numbers (day boundaries depend on measurement durations), so any
  // fault plan licenses degradation on every day it could reach.
  if (!faults.events.empty()) return true;
  for (const auto& regime : regimes) {
    if (!regime.applies(day)) continue;
    if (regime.kind == RegimeKind::kStorm ||
        regime.kind == RegimeKind::kDiurnal) {
      return true;
    }
  }
  return false;
}

Scenario Scenario::parse(std::string_view spec, std::uint64_t seed) {
  Scenario scenario;
  scenario.seed = seed;
  scenario.faults.seed = seed;

  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view part = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (part.empty()) continue;

    const std::size_t at_pos = part.find('@');
    if (at_pos == std::string_view::npos) {
      bad_spec(spec, part, "missing '@' in clause");
    }
    const std::string_view kind_name = trim(part.substr(0, at_pos));
    if (const auto regime_kind = regime_kind_from_string(kind_name)) {
      scenario.regimes.push_back(
          parse_regime(spec, part, *regime_kind, at_pos));
    } else if (fault::kind_from_string(kind_name)) {
      scenario.faults.events.push_back(
          fault::parse_fault_event(spec, part, kContext));
    } else {
      bad_spec(spec, part,
               "unknown kind '" + std::string(kind_name) + "'");
    }
  }
  return scenario;
}

std::string Scenario::to_spec() const {
  std::string out = faults.to_spec();
  for (const auto& regime : regimes) {
    if (!out.empty()) out += ';';
    out += to_string(regime.kind);
    out += '@';
    out += format_ns(regime.at.ns());
    if (regime.duration.ns() > 0) {
      out += '+';
      out += format_ns(regime.duration.ns());
    }
    std::string params;
    if (regime.day_first != 1 || regime.day_last != kAllDays) {
      params += "days=" + std::to_string(regime.day_first);
      if (regime.day_last != regime.day_first) {
        params += '-' + std::to_string(regime.day_last);
      }
    }
    if (regime.site != fault::kAllSites) {
      if (!params.empty()) params += ',';
      params += "site=" + std::to_string(regime.site);
    }
    if (regime.count != 1) {
      if (!params.empty()) params += ',';
      params += "count=" + std::to_string(regime.count);
    }
    if (regime.p != 1.0) append_double(params, "p", regime.p);
    if (regime.fraction != 1.0) append_double(params, "frac", regime.fraction);
    if (regime.mag.ns() > 0) {
      if (!params.empty()) params += ',';
      params += "mag=" + format_ns(regime.mag.ns());
    }
    if (regime.proto_mask != 0) {
      if (!params.empty()) params += ',';
      params += "proto=" + proto_mask_to_string(regime.proto_mask);
    }
    if (!params.empty()) {
      out += ':';
      out += params;
    }
  }
  return out;
}

std::string Scenario::describe() const {
  std::string out = faults.describe();
  char buf[192];
  for (const auto& regime : regimes) {
    std::string days = regime.day_last == kAllDays
                           ? (regime.day_first == 1
                                  ? std::string("all")
                                  : std::to_string(regime.day_first) + "+")
                           : std::to_string(regime.day_first) + "-" +
                                 std::to_string(regime.day_last);
    std::string site = regime.site == fault::kAllSites
                           ? "all"
                           : std::to_string(regime.site);
    std::snprintf(buf, sizeof(buf),
                  "day+%.3fs %-10s days=%-5s site=%-3s count=%d dur=%.3fs "
                  "p=%.2f frac=%.2f mag=%.0fms proto=%s\n",
                  regime.at.to_seconds(),
                  std::string(to_string(regime.kind)).c_str(), days.c_str(),
                  site.c_str(), regime.count, regime.duration.to_seconds(),
                  regime.p, regime.fraction, regime.mag.to_millis(),
                  regime.proto_mask != 0
                      ? proto_mask_to_string(regime.proto_mask).c_str()
                      : "-");
    out += buf;
  }
  return out;
}

Scenario Scenario::generate(std::uint64_t seed, const GenerateOptions& opts) {
  Scenario scenario;
  scenario.seed = seed;
  scenario.faults.seed = seed;  // parse() sets it too: round-trip exactness
  Rng rng(StableHash(0x5ce0).mix(seed).value());
  const double span_s = opts.day_span.to_seconds();
  const int sites = std::max(1, opts.sites);

  // About half of generated scenarios layer a control-plane fault plan on
  // top of the regimes (compound failures are the point). Bare crashes are
  // promoted to crash-restart pairs so every generated lifecycle fault
  // heals within the day it fires in — the property that keeps mid-series
  // checkpoints free of scenario state.
  if (opts.allow_faults && rng.uniform(0.0, 1.0) < 0.5) {
    fault::GenerateOptions fopts;
    fopts.horizon = opts.fault_horizon;
    fopts.sites = opts.sites;
    scenario.faults = fault::FaultPlan::generate(
        StableHash(0xfab).mix(seed).value(), fopts);
    scenario.faults.seed = seed;
    for (auto& ev : scenario.faults.events) {
      if (ev.kind == fault::FaultKind::kCrashWorker) {
        ev.kind = fault::FaultKind::kCrashRestartWorker;
        if (ev.duration.ns() <= 0) {
          ev.duration = SimDuration::from_seconds(rng.uniform(0.5, 2.0));
        }
      }
    }
  }

  const int n = static_cast<int>(rng.uniform_int(
      static_cast<std::uint64_t>(std::max(0, opts.min_regimes)),
      static_cast<std::uint64_t>(
          std::max(opts.min_regimes, opts.max_regimes))));
  for (int i = 0; i < n; ++i) {
    Regime regime;
    regime.kind = kAllRegimeKinds[rng.index(std::size(kAllRegimeKinds))];
    // Most regimes run every day; some target a single early day.
    if (rng.uniform(0.0, 1.0) < 0.3) {
      regime.day_first = 1 + static_cast<std::uint32_t>(rng.index(2));
      regime.day_last = regime.day_first;
    }
    switch (regime.kind) {
      case RegimeKind::kDiurnal:
        regime.site = static_cast<int>(rng.index(
            static_cast<std::size_t>(sites)));
        regime.at = SimDuration::from_seconds(rng.uniform(0.0, span_s * 0.5));
        regime.duration =
            SimDuration::from_seconds(rng.uniform(0.5, span_s * 0.3));
        break;
      case RegimeKind::kStorm:
        regime.count = 1 + static_cast<int>(rng.index(
                               static_cast<std::size_t>(sites)));
        regime.at = SimDuration::from_seconds(rng.uniform(0.0, span_s * 0.4));
        regime.mag = SimDuration::from_seconds(rng.uniform(0.5, 2.0));
        break;
      case RegimeKind::kThrottle:
        regime.site = rng.uniform(0.0, 1.0) < 0.5
                          ? fault::kAllSites
                          : static_cast<int>(rng.index(
                                static_cast<std::size_t>(sites)));
        regime.p = rng.uniform(0.05, 0.5);
        break;
      case RegimeKind::kSkew: {
        regime.site = static_cast<int>(rng.index(
            static_cast<std::size_t>(sites)));
        // Disable one or two protocols, never all three.
        const std::uint8_t masks[] = {0x2, 0x4, 0x6, 0x1, 0x5};
        regime.proto_mask = masks[rng.index(std::size(masks))];
        break;
      }
      case RegimeKind::kRouteFlip:
        regime.at = SimDuration::from_seconds(rng.uniform(0.0, span_s * 0.5));
        regime.duration =
            SimDuration::from_seconds(rng.uniform(1.0, span_s * 0.5));
        regime.fraction = rng.uniform(0.05, 0.5);
        break;
      case RegimeKind::kPathLoss:
        regime.at = SimDuration::from_seconds(rng.uniform(0.0, span_s * 0.5));
        regime.duration =
            SimDuration::from_seconds(rng.uniform(1.0, span_s * 0.5));
        regime.fraction = rng.uniform(0.02, 0.3);
        regime.p = rng.uniform(0.3, 1.0);
        break;
      case RegimeKind::kChurn:
        regime.fraction = rng.uniform(0.01, 0.2);
        break;
    }
    scenario.regimes.push_back(regime);
  }

  std::sort(scenario.regimes.begin(), scenario.regimes.end(),
            [](const Regime& a, const Regime& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.site < b.site;
            });
  return scenario;
}

}  // namespace laces::scenario
