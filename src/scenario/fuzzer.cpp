#include "scenario/fuzzer.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "census/longitudinal.hpp"
#include "census/output.hpp"
#include "census/pipeline.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/platform.hpp"
#include "scenario/runner.hpp"
#include "store/archive.hpp"
#include "topo/network.hpp"
#include "util/sha256.hpp"

namespace laces::scenario {
namespace {

namespace fs = std::filesystem;

/// Wall-clock hang detector. A hung event loop cannot be unwound from
/// within the process, so on expiry the watchdog prints the reproduction
/// handle (seed + spec) and exits with the conventional timeout status.
class Watchdog {
 public:
  explicit Watchdog(double timeout_seconds)
      : budget_(timeout_seconds) {
    if (budget_ > 0.0) thread_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void arm(std::uint64_t seed, std::string spec) {
    if (!thread_.joinable()) return;
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
    seed_ = seed;
    spec_ = std::move(spec);
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget_));
    cv_.notify_all();
  }

  void disarm() {
    if (!thread_.joinable()) return;
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
    cv_.notify_all();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (!armed_) {
        cv_.wait(lock);
        continue;
      }
      if (cv_.wait_until(lock, deadline_) == std::cv_status::timeout &&
          armed_ && !stop_) {
        std::fprintf(stderr,
                     "fuzz-scenarios: HANG after %.0fs\n  seed: %llu\n"
                     "  spec: %s\n",
                     budget_, static_cast<unsigned long long>(seed_),
                     spec_.c_str());
        std::fflush(stderr);
        std::_Exit(124);
      }
    }
  }

  const double budget_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::uint64_t seed_ = 0;
  std::string spec_;
  std::thread thread_;
};

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

struct CensusResult {
  std::vector<std::string> day_csv;  // index = day; unrun days stay empty
  std::vector<bool> day_degraded;
  census::StabilityStats anycast;
  census::StabilityStats gcd;
  std::size_t worker_count = 0;
  std::uint64_t regimes_applied = 0;
  std::uint64_t worker_outages = 0;
  /// First per-day longitudinal invariant violation, if any.
  std::optional<std::string> violation;

  std::string digest() const {
    std::string all;
    for (const auto& csv : day_csv) all += csv;
    return to_hex(Sha256::hash(all));
  }
};

/// One simulated "process" under a scenario: the same stack and resume
/// sequence as run_series in tests/test_store_resume.cpp (which mirrors
/// cmd_census), plus the ScenarioRunner bracketing each day.
CensusResult run_census(const topo::World& world, const Scenario* scenario,
                        std::uint32_t total_days, std::size_t shards,
                        double targets_per_second, const fs::path* archive_dir,
                        bool resume) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  obs::Tracer::global().reset();

  EventQueue events;
  topo::SimNetwork network(world, events);
  if (shards > 1) network.enable_sharding(shards);
  core::Session session(network, platform::make_production_deployment(world));
  census::PipelineConfig config;
  config.targets_per_second = targets_per_second;
  census::Pipeline pipeline(network, session,
                            platform::make_ark(world, 20, 0xa),
                            platform::make_ark(world, 12, 0xb), config);
  std::optional<ScenarioRunner> runner;
  if (scenario != nullptr) runner.emplace(*scenario, session);

  census::LongitudinalStore longitudinal;
  std::uint32_t start_day = 1;
  SimTime resumed_clock = SimTime::epoch();
  if (resume) {
    store::ArchiveReader reader(*archive_dir);
    const store::Checkpoint cp = reader.load_checkpoint();
    events.schedule_at(SimTime(cp.sim_time_ns), [] {});
    events.run();
    pipeline.restore_state(cp.pipeline);
    for (std::size_t i = 0;
         i < cp.worker_rng.size() && i < session.worker_count(); ++i) {
      session.worker(i).restore_rng_state(cp.worker_rng[i]);
    }
    obs::Tracer::global().set_next_id(cp.next_span_id);
    longitudinal = census::LongitudinalStore::from_snapshot(cp.longitudinal);
    start_day = cp.last_day + 1;
    resumed_clock = SimTime(cp.sim_time_ns);
  }
  std::optional<store::ArchiveWriter> archive;
  if (archive_dir != nullptr) archive.emplace(*archive_dir);
  // On resume, lifecycle faults that fired (and healed) before the
  // checkpoint must not replay — exactly what the CLI does.
  if (runner) runner->install(resumed_clock);

  CensusResult out;
  out.worker_count = session.worker_count();
  out.day_csv.resize(total_days + 1);
  out.day_degraded.resize(total_days + 1, false);
  for (std::uint32_t day = start_day; day <= total_days; ++day) {
    if (runner) runner->begin_day(day);
    const auto daily = pipeline.run_day(day);
    if (runner) runner->end_day();
    out.day_csv[day] = census::render_census(daily);
    out.day_degraded[day] = daily.degraded;
    longitudinal.add(daily);
    if (const auto err = longitudinal.check_invariants()) {
      out.violation = "day " + std::to_string(day) + ": " + *err;
      break;
    }
    if (archive) {
      archive->append(daily);
      store::Checkpoint cp;
      cp.last_day = daily.day;
      cp.sim_time_ns = events.now().ns();
      cp.next_span_id = obs::Tracer::global().next_id();
      cp.pipeline = pipeline.state();
      cp.longitudinal = longitudinal.snapshot();
      for (std::size_t i = 0; i < session.worker_count(); ++i) {
        cp.worker_rng.push_back(session.worker(i).rng_state());
      }
      archive->write_checkpoint(cp);
    }
  }
  out.anycast = longitudinal.anycast_based_stability();
  out.gcd = longitudinal.gcd_stability();
  if (runner) {
    out.regimes_applied = runner->regimes_applied();
    out.worker_outages = runner->worker_outages();
  }
  return out;
}

/// The degraded-day accounting invariants, checked per seed.
std::optional<std::string> check_accounting(const CensusResult& r,
                                            const Scenario& scenario,
                                            std::uint32_t total_days) {
  std::uint64_t degraded = 0;
  for (std::uint32_t day = 1; day <= total_days; ++day) {
    if (!r.day_degraded[day]) continue;
    ++degraded;
    if (!scenario.may_degrade(day)) {
      return "day " + std::to_string(day) +
             " degraded but the scenario has no fault or outage regime "
             "licensing it";
    }
  }
  if (r.anycast.degraded_days != degraded) {
    return "longitudinal counted " + std::to_string(r.anycast.degraded_days) +
           " degraded days, census stream shows " + std::to_string(degraded);
  }
  if (r.anycast.days + r.anycast.degraded_days != total_days) {
    return "healthy (" + std::to_string(r.anycast.days) + ") + degraded (" +
           std::to_string(r.anycast.degraded_days) +
           ") days != " + std::to_string(total_days) + " days run";
  }
  return std::nullopt;
}

std::optional<std::string> compare_archives(const fs::path& a,
                                            const fs::path& b,
                                            std::uint32_t days) {
  if (slurp(a / store::kManifestFile) != slurp(b / store::kManifestFile)) {
    return std::string("archive manifests differ");
  }
  if (slurp(a / store::kCheckpointFile) != slurp(b / store::kCheckpointFile)) {
    return std::string("final checkpoints differ");
  }
  for (std::uint32_t day = 1; day <= days; ++day) {
    const auto name = store::segment_file_name(day);
    if (slurp(a / name) != slurp(b / name)) {
      return "segment " + name + " differs";
    }
  }
  return std::nullopt;
}

fs::path fresh_dir(const fs::path& base, const std::string& name) {
  const fs::path dir = base / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

}  // namespace

topo::WorldConfig FuzzOptions::default_fuzz_world_config() {
  // The test suite's tiny world: ~100 v4 prefixes, every deployment family
  // present, small enough that a 2-day census stays under a second.
  topo::WorldConfig cfg;
  cfg.seed = 3;
  cfg.as_graph.tier1_count = 8;
  cfg.as_graph.transit_count = 60;
  cfg.as_graph.stub_count = 300;
  cfg.v4_unicast = 60;
  cfg.v4_unresponsive = 10;
  cfg.v4_medium_anycast_orgs = 3;
  cfg.v4_regional_anycast = 2;
  cfg.v4_global_bgp_unicast = 5;
  cfg.v4_temporary_anycast = 2;
  cfg.v4_partial_anycast = 3;
  cfg.dns_root_like = 2;
  cfg.udp_only_anycast = 1;
  cfg.tcp_only_anycast = 1;
  cfg.v6_unicast = 30;
  cfg.v6_unresponsive = 5;
  cfg.v6_medium_anycast_orgs = 2;
  cfg.v6_regional_anycast = 1;
  cfg.v6_backing_anycast = 2;
  cfg.v6_filtering_transit_fraction = 0.10;
  return cfg;
}

FuzzSummary run_fuzz(const FuzzOptions& options) {
  const auto world = topo::World::generate(options.world);
  Watchdog watchdog(options.timeout_seconds);
  FuzzSummary summary;

  const auto fail = [&](std::uint64_t seed, const std::string& spec,
                        std::string what) {
    std::fprintf(stderr,
                 "fuzz-scenarios: FAIL\n  seed: %llu\n  spec: %s\n"
                 "  violation: %s\n",
                 static_cast<unsigned long long>(seed), spec.c_str(),
                 what.c_str());
    summary.failures.push_back(FuzzFailure{seed, spec, std::move(what)});
  };

  // Sweep preamble: the scenario-off identity. A run with an empty
  // scenario (runner constructed, hooks armed, nothing scheduled) must be
  // byte-identical to a plain run — the "scenario machinery is an exact
  // no-op when disabled" contract the golden-digest tests pin globally,
  // re-checked here against this sweep's world.
  watchdog.arm(0, "(scenario-off identity check)");
  const auto plain = run_census(world, nullptr, options.days, 1,
                                options.targets_per_second, nullptr, false);
  const Scenario empty_scenario;
  const auto off = run_census(world, &empty_scenario, options.days, 1,
                              options.targets_per_second, nullptr, false);
  watchdog.disarm();
  if (off.digest() != plain.digest()) {
    fail(0, "", "empty scenario changed the census digest: " + off.digest() +
                    " vs plain " + plain.digest());
  }

  GenerateOptions generate = options.generate;
  generate.sites = static_cast<int>(plain.worker_count);

  for (int i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed = options.start_seed + static_cast<std::uint64_t>(i);
    const Scenario scenario = Scenario::generate(seed, generate);
    const std::string spec = scenario.to_spec();
    watchdog.arm(seed, spec);

    const auto r1 = run_census(world, &scenario, options.days, 1,
                               options.targets_per_second, nullptr, false);
    ++summary.ran;
    summary.regimes_applied += r1.regimes_applied;
    summary.degraded_days += r1.anycast.degraded_days;
    summary.worker_outages += r1.worker_outages;

    if (r1.violation) {
      fail(seed, spec, "longitudinal invariant: " + *r1.violation);
      watchdog.disarm();
      continue;
    }
    if (const auto err = check_accounting(r1, scenario, options.days)) {
      fail(seed, spec, "degraded-day accounting: " + *err);
      watchdog.disarm();
      continue;
    }
    if (scenario.empty() && r1.digest() != plain.digest()) {
      fail(seed, spec, "empty generated scenario changed the census digest");
      watchdog.disarm();
      continue;
    }

    bool seed_ok = true;
    if (options.resume_check_every > 0 && options.days >= 2 &&
        i % options.resume_check_every == 0) {
      ++summary.resume_checks;
      const std::string tag = "seed-" + std::to_string(seed);
      const auto golden_dir = fresh_dir(options.work_dir, tag + "-golden");
      const auto killed_dir = fresh_dir(options.work_dir, tag + "-killed");
      const auto golden =
          run_census(world, &scenario, options.days, 1,
                     options.targets_per_second, &golden_dir, false);
      // Kill after the first day, resume the rest in a fresh "process".
      run_census(world, &scenario, 1, 1, options.targets_per_second,
                 &killed_dir, false);
      const auto resumed =
          run_census(world, &scenario, options.days, 1,
                     options.targets_per_second, &killed_dir, true);
      if (golden.digest() != r1.digest()) {
        fail(seed, spec, "archiving perturbed the census digest");
        seed_ok = false;
      } else if (resumed.day_csv.back() != golden.day_csv.back()) {
        fail(seed, spec, "resumed run diverged from uninterrupted run");
        seed_ok = false;
      } else if (const auto err = compare_archives(golden_dir, killed_dir,
                                                   options.days)) {
        fail(seed, spec, "resume byte-identity: " + *err);
        seed_ok = false;
      }
      fs::remove_all(golden_dir);
      fs::remove_all(killed_dir);
    }

    if (seed_ok && options.shard_check_every > 0 && options.shard_count > 1 &&
        i % options.shard_check_every == 0) {
      ++summary.shard_checks;
      const auto sharded =
          run_census(world, &scenario, options.days, options.shard_count,
                     options.targets_per_second, nullptr, false);
      if (sharded.digest() != r1.digest()) {
        fail(seed, spec,
             "census digest differs at " +
                 std::to_string(options.shard_count) + " shards: " +
                 sharded.digest() + " vs " + r1.digest());
      }
    }

    watchdog.disarm();
    if (options.verbose) {
      std::fprintf(stderr,
                   "fuzz-scenarios: seed %llu ok (%llu regimes, %llu degraded "
                   "days)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(r1.regimes_applied),
                   static_cast<unsigned long long>(r1.anycast.degraded_days));
    }
  }
  return summary;
}

}  // namespace laces::scenario
