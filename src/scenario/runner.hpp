// ScenarioRunner: applies a Scenario to a live census session, day by day.
//
// The runner is the bridge between the declarative Scenario grammar and
// the moving parts it drives: the FaultInjector for control-plane faults,
// the Session/Worker availability hooks for platform churn, and the
// SimNetwork DayOverlay for data-plane regimes. Everything it schedules
// is day-scoped — begin_day() arms the day's regimes relative to the
// current sim clock, the day's event drain fires (and heals) all of them,
// end_day() clears the rest — so a checkpoint written between days never
// carries scenario state, and a resumed run that re-installs the runner
// reproduces the uninterrupted byte stream exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "topo/overlay.hpp"

namespace laces::scenario {

/// Exponential re-join delay with mean `mean`, from a unit roll. Capped at
/// 5 means so one unlucky peer cannot stretch the tail of a storm
/// unboundedly.
SimDuration exponential_delay(SimDuration mean, double unit);

/// One deterministic storm outage: which peer drops, when (offset from the
/// regime's `at` anchor), and when it re-joins.
struct StormOutage {
  std::size_t peer = 0;
  SimDuration down_after;  // stable per-peer jitter within 0.3 s
  SimDuration up_after;    // down_after + 1 ms + exponential re-join
};

/// Expands a kStorm regime over `peers` peers: ranks them by a salted
/// stable hash, hits the `count` smallest, and derives each victim's
/// down/up offsets. Pure in (regime, regime_salt, peers) — the
/// ScenarioRunner drives census workers with it, and the mesh soak drives
/// relay disconnect storms with the very same membership and timing.
std::vector<StormOutage> expand_storm(const Regime& regime,
                                      std::uint64_t regime_salt,
                                      std::size_t peers);

class ScenarioRunner {
 public:
  /// Registers the laces_scenario_* metrics — constructed only when a
  /// scenario is active, so scenario-off runs keep their golden metric
  /// surface byte-identical.
  ScenarioRunner(Scenario scenario, core::Session& session);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Installs the scenario's fault plan (if any). On a resumed run pass
  /// the restored clock so lifecycle faults that fired (and healed) before
  /// the checkpoint are not replayed.
  void install(SimTime skip_lifecycle_before = SimTime::epoch());

  /// Arm the regimes applicable to `day`, relative to the current sim
  /// clock. Call immediately before Pipeline::run_day(day).
  void begin_day(std::uint32_t day);

  /// Clear the day's overlay and worker limits and heal any worker still
  /// down (defensive; scheduled re-joins always fire within the day's
  /// drain). Call after run_day() returns, before the day's checkpoint.
  void end_day();

  const Scenario& scenario() const { return scenario_; }
  const fault::FaultInjector* injector() const { return injector_.get(); }
  /// Regime applications so far (one per applicable regime per day).
  std::uint64_t regimes_applied() const { return regimes_applied_total_; }
  /// Scenario-driven worker disconnects so far (storms + diurnal windows).
  std::uint64_t worker_outages() const { return worker_outages_total_; }

 private:
  /// Invoke `fn(worker_index)` for every worker in the regime's scope.
  template <typename Fn>
  void for_scoped_workers(int site, Fn&& fn);
  /// Schedule a disconnect/reconnect pair for one worker.
  void schedule_outage(std::size_t worker, SimTime down_at, SimTime up_at);
  void publish_gauges();

  Scenario scenario_;
  core::Session& session_;
  std::unique_ptr<fault::FaultInjector> injector_;
  topo::DayOverlay overlay_;
  std::uint64_t regimes_applied_total_ = 0;
  std::uint64_t worker_outages_total_ = 0;

  obs::Counter* applied_total_[7] = {};
  obs::Counter* outages_counter_ = nullptr;
  obs::Gauge* suppressed_gauge_ = nullptr;
  obs::Gauge* flips_gauge_ = nullptr;
  obs::Gauge* path_lost_gauge_ = nullptr;
  obs::Gauge* withdrawn_gauge_ = nullptr;
};

}  // namespace laces::scenario
