#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace laces::scenario {

SimDuration exponential_delay(SimDuration mean, double unit) {
  const double clamped = std::min(unit, 0.999999);
  const double factor = std::min(-std::log(1.0 - clamped), 5.0);
  return SimDuration(static_cast<std::int64_t>(
      static_cast<double>(mean.ns()) * factor));
}

std::vector<StormOutage> expand_storm(const Regime& regime,
                                      std::uint64_t regime_salt,
                                      std::size_t peers) {
  // Deterministic storm membership: rank peers by a salted hash, hit the
  // `count` smallest. Each victim drops with a small stable jitter and
  // re-joins after an exponential delay — the trickle-back a real
  // correlated outage shows.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(peers);
  for (std::size_t w = 0; w < peers; ++w) {
    ranked.emplace_back(
        StableHash(regime_salt ^ 0x5702).mix(std::uint64_t{w}).value(), w);
  }
  std::sort(ranked.begin(), ranked.end());
  const std::size_t hit = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(regime.count, 1)), ranked.size());
  std::vector<StormOutage> outages;
  outages.reserve(hit);
  for (std::size_t k = 0; k < hit; ++k) {
    const std::size_t w = ranked[k].second;
    const double jitter_u =
        StableHash(regime_salt ^ 0x5703).mix(std::uint64_t{w}).unit();
    const double rejoin_u =
        StableHash(regime_salt ^ 0x5704).mix(std::uint64_t{w}).unit();
    StormOutage outage;
    outage.peer = w;
    outage.down_after = SimDuration::from_seconds(jitter_u * 0.3);
    outage.up_after = outage.down_after + SimDuration::millis(1) +
                      exponential_delay(regime.mag, rejoin_u);
    outages.push_back(outage);
  }
  return outages;
}

ScenarioRunner::ScenarioRunner(Scenario scenario, core::Session& session)
    : scenario_(std::move(scenario)), session_(session) {
  auto& registry = obs::Registry::global();
  for (const RegimeKind kind :
       {RegimeKind::kDiurnal, RegimeKind::kStorm, RegimeKind::kThrottle,
        RegimeKind::kSkew, RegimeKind::kRouteFlip, RegimeKind::kPathLoss,
        RegimeKind::kChurn}) {
    applied_total_[static_cast<std::size_t>(kind)] =
        &registry.counter("laces_scenario_regimes_applied_total",
                          {{"regime", std::string(to_string(kind))}});
  }
  outages_counter_ = &registry.counter("laces_scenario_worker_outages_total");
  suppressed_gauge_ = &registry.gauge("laces_scenario_probes_suppressed");
  flips_gauge_ = &registry.gauge("laces_scenario_overlay_flips");
  path_lost_gauge_ = &registry.gauge("laces_scenario_overlay_path_lost");
  withdrawn_gauge_ = &registry.gauge("laces_scenario_overlay_withdrawn");
}

ScenarioRunner::~ScenarioRunner() {
  // Never leave a dangling overlay pointer on the network.
  session_.network().set_day_overlay(nullptr);
}

void ScenarioRunner::install(SimTime skip_lifecycle_before) {
  if (scenario_.faults.events.empty()) return;
  injector_ = std::make_unique<fault::FaultInjector>(scenario_.faults);
  injector_->install(session_, skip_lifecycle_before);
  // Frame-fault rolls consume a per-injector frame counter, so a fault
  // window still active at a checkpoint would replay differently after a
  // resume (fresh injector, counter back at zero). Parking a no-op at each
  // window's end forces the enclosing day's drain past the last active
  // window — checkpoints then always sit in fault-quiet time.
  auto& events = session_.network().events();
  for (const auto& ev : scenario_.faults.events) {
    if (ev.duration.ns() <= 0) continue;
    events.schedule_at(ev.at + ev.duration + SimDuration::millis(1), [] {});
  }
}

template <typename Fn>
void ScenarioRunner::for_scoped_workers(int site, Fn&& fn) {
  if (site == fault::kAllSites) {
    for (std::size_t w = 0; w < session_.worker_count(); ++w) fn(w);
  } else if (site >= 0 &&
             site < static_cast<int>(session_.worker_count())) {
    fn(static_cast<std::size_t>(site));
  }
}

void ScenarioRunner::schedule_outage(std::size_t worker, SimTime down_at,
                                     SimTime up_at) {
  auto& events = session_.network().events();
  events.schedule_at(down_at, [this, worker]() {
    if (!session_.worker(worker).connected()) return;  // already down
    session_.worker(worker).disconnect();
    ++worker_outages_total_;
    outages_counter_->add();
  });
  events.schedule_at(up_at, [this, worker]() {
    if (session_.worker(worker).connected()) return;  // a fault beat us
    session_.reconnect_worker(worker);
    if (injector_) injector_->rehook_worker_link(worker);
  });
}

void ScenarioRunner::begin_day(std::uint32_t day) {
  const SimTime day_start = session_.network().now();

  overlay_ = topo::DayOverlay{};
  // Version-skew masks compose (a worker can miss several protocols);
  // start from "everything enabled" and AND the skews in.
  std::vector<std::uint8_t> masks(session_.worker_count(), 0xff);
  bool limits_touched = false;

  for (std::size_t i = 0; i < scenario_.regimes.size(); ++i) {
    const Regime& regime = scenario_.regimes[i];
    if (!regime.applies(day)) continue;
    ++regimes_applied_total_;
    applied_total_[static_cast<std::size_t>(regime.kind)]->add();

    const std::uint64_t regime_salt = StableHash(scenario_.seed ^ 0x5ce9a)
                                          .mix(std::uint64_t{day})
                                          .mix(std::uint64_t{i})
                                          .value();
    // duration 0 means "the rest of the day": any horizon beyond the
    // day's drain behaves identically, so one hour is plenty.
    const SimDuration window = regime.duration.ns() > 0
                                   ? regime.duration
                                   : SimDuration::seconds(3600);

    switch (regime.kind) {
      case RegimeKind::kDiurnal: {
        for_scoped_workers(regime.site, [&](std::size_t w) {
          schedule_outage(w, day_start + regime.at,
                          day_start + regime.at + window);
        });
        break;
      }
      case RegimeKind::kStorm: {
        for (const StormOutage& outage :
             expand_storm(regime, regime_salt, session_.worker_count())) {
          schedule_outage(outage.peer,
                          day_start + regime.at + outage.down_after,
                          day_start + regime.at + outage.up_after);
        }
        break;
      }
      case RegimeKind::kThrottle: {
        for_scoped_workers(regime.site, [&](std::size_t w) {
          session_.set_worker_throttle(
              w, regime.p,
              StableHash(regime_salt ^ 0x7707).mix(std::uint64_t{w}).value());
        });
        limits_touched = true;
        break;
      }
      case RegimeKind::kSkew: {
        for_scoped_workers(regime.site, [&](std::size_t w) {
          masks[w] &= static_cast<std::uint8_t>(~regime.proto_mask);
        });
        limits_touched = true;
        break;
      }
      case RegimeKind::kRouteFlip: {
        overlay_.route_flip.push_back(topo::OverlayWindow{
            day_start + regime.at, day_start + regime.at + window,
            regime.fraction, 1.0, regime_salt});
        break;
      }
      case RegimeKind::kPathLoss: {
        overlay_.path_loss.push_back(topo::OverlayWindow{
            day_start + regime.at, day_start + regime.at + window,
            regime.fraction, regime.p, regime_salt});
        break;
      }
      case RegimeKind::kChurn: {
        // Strongest churn wins when several overlap; target_withdrawn()
        // keys on (salt, day, prefix), so membership reshuffles daily.
        if (regime.fraction > overlay_.target_churn) {
          overlay_.target_churn = regime.fraction;
          overlay_.churn_salt = StableHash(scenario_.seed ^ 0xc417)
                                    .mix(std::uint64_t{i})
                                    .value();
        }
        break;
      }
    }
  }

  if (limits_touched) {
    for (std::size_t w = 0; w < session_.worker_count(); ++w) {
      if (masks[w] != 0xff) session_.set_worker_capability_mask(w, masks[w]);
    }
  }
  session_.network().set_day_overlay(overlay_.empty() ? nullptr : &overlay_);
}

void ScenarioRunner::end_day() {
  session_.network().set_day_overlay(nullptr);
  session_.clear_worker_limits();
  // Scheduled re-joins always fire within the day's drain (the queue runs
  // dry before run_day returns), so this loop is a no-op unless a fault
  // plan crashed a worker without restarting it — heal that too, so the
  // post-day checkpoint state is connection-clean and resume-safe.
  for (std::size_t w = 0; w < session_.worker_count(); ++w) {
    if (session_.worker(w).connected()) continue;
    session_.reconnect_worker(w);
    if (injector_) injector_->rehook_worker_link(w);
  }
  publish_gauges();
}

void ScenarioRunner::publish_gauges() {
  suppressed_gauge_->set(
      static_cast<double>(session_.probes_suppressed()));
  const auto& network = session_.network();
  flips_gauge_->set(static_cast<double>(network.overlay_flips()));
  path_lost_gauge_->set(static_cast<double>(network.overlay_path_lost()));
  withdrawn_gauge_->set(static_cast<double>(network.overlay_withdrawn()));
}

}  // namespace laces::scenario
