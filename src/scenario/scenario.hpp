// Operational-realism scenarios (the laces_scenario tentpole).
//
// A Scenario composes, on one simulated timeline, everything a real
// measurement platform suffers at once: the control-plane faults of
// fault::FaultPlan, platform-churn regimes (diurnal availability windows,
// disconnect storms with exponential re-join, per-worker credit
// throttling, version skew that toggles probe capabilities — the failure
// catalog of "A Day in the Life of RIPE Atlas"), and data-plane regimes
// (route-flip schedules that shift catchments mid-day, path-scoped loss
// that masquerades as unresponsiveness, hitlist churn between days).
//
// Scenarios follow the FaultPlan idiom end to end: a scenario is a pure
// function of (seed, spec), parse/to_spec round-trip exactly, and every
// stochastic choice a scenario induces at run time is keyed on packet or
// entity identity — so a scenario run replays bit-for-bit, including
// under --sim-threads sharding and across checkpoint/resume.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/simtime.hpp"

namespace laces::scenario {

enum class RegimeKind : std::uint8_t {
  /// Daily availability window: the site is offline during
  /// [at, at+duration) of every applicable day (diurnal churn).
  kDiurnal = 0,
  /// Disconnect storm: `count` workers drop at `at` (small stable jitter
  /// apart) and re-join after exponentially distributed delays with mean
  /// `mag` (the classic correlated-outage + trickle-back pattern).
  kStorm,
  /// Credit/rate throttling: each scheduled probe of the scoped workers
  /// is suppressed with probability `p` for the whole day.
  kThrottle,
  /// Version skew: the scoped workers cannot send the protocols in
  /// `proto_mask` (old firmware) for the whole day.
  kSkew,
  /// Data plane: flows in a stable `fraction` of flow space are served by
  /// their second-best PoP during [at, at+duration) — catchments shift
  /// mid-day.
  kRouteFlip,
  /// Data plane: a stable `fraction` of target prefixes lose inbound
  /// packets with probability `p` during [at, at+duration) — path-scoped
  /// loss that looks like unresponsiveness.
  kPathLoss,
  /// Data plane: a stable, day-keyed `fraction` of target prefixes is
  /// withdrawn for each applicable day (hitlist churn between days).
  kChurn,
};

std::string_view to_string(RegimeKind kind);
std::optional<RegimeKind> regime_kind_from_string(std::string_view name);

/// `day_last` value meaning "every day".
inline constexpr std::uint32_t kAllDays = 0xffffffffu;

/// One platform-churn or data-plane regime. Time fields are offsets into
/// each applicable census day (scenario regimes are day-scoped by design:
/// all induced churn heals before the day's event queue drains, so
/// checkpoints never carry scenario state — the property resume-under-
/// scenario byte-identity rests on).
struct Regime {
  RegimeKind kind = RegimeKind::kDiurnal;
  /// Applicable days, inclusive; [1, kAllDays] by default.
  std::uint32_t day_first = 1;
  std::uint32_t day_last = kAllDays;
  /// Offset into the day and window length (kDiurnal/kRouteFlip/kPathLoss;
  /// storm start for kStorm). duration 0 means "the rest of the day".
  SimDuration at{};
  SimDuration duration{};
  /// Worker scope for platform regimes: index or fault::kAllSites.
  int site = fault::kAllSites;
  /// Storm size (workers hit).
  int count = 1;
  /// Probability / intensity (throttle skip, path-loss drop).
  double p = 1.0;
  /// Stable scope fraction (flows for kRouteFlip, prefixes for
  /// kPathLoss/kChurn).
  double fraction = 1.0;
  /// Mean re-join delay for kStorm.
  SimDuration mag{};
  /// Disabled-protocol bits for kSkew (bit = net::Protocol ordinal).
  std::uint8_t proto_mask = 0;

  bool applies(std::uint32_t day) const {
    return day >= day_first && day <= day_last;
  }

  bool operator==(const Regime&) const = default;
};

struct GenerateOptions {
  /// Workers available for platform regimes.
  int sites = 4;
  /// Active probing window within a day that timed regimes land in.
  SimDuration day_span = SimDuration::seconds(20);
  int min_regimes = 1;
  int max_regimes = 4;
  /// Allow a FaultPlan sub-plan (~half of generated scenarios carry one).
  bool allow_faults = true;
  /// Fault sub-plan horizon (kept inside day 1 so generated lifecycle
  /// faults pair up and heal before the first checkpoint).
  SimDuration fault_horizon = SimDuration::seconds(20);
};

/// A deterministic, seeded composition of faults and regimes.
struct Scenario {
  std::uint64_t seed = 0;
  fault::FaultPlan faults;
  std::vector<Regime> regimes;

  bool empty() const { return faults.events.empty() && regimes.empty(); }

  /// True when the scenario is allowed to degrade `day`: it carries
  /// control-plane faults, or a worker-outage regime (storm/diurnal)
  /// applies that day. The fuzzer asserts the one-directional invariant
  /// "day degraded => may_degrade(day)" — throttling, skew and data-plane
  /// regimes never degrade a day (measurements complete, just observe
  /// less), and a healthy day under any scenario is always legal (a storm
  /// may fully heal before the measurement finishes).
  bool may_degrade(std::uint32_t day) const;

  /// Pure function of (seed, opts): the scenario fuzzer's generator.
  static Scenario generate(std::uint64_t seed, const GenerateOptions& opts = {});

  /// Parses the `--scenario` grammar: semicolon-separated clauses, each
  ///   kind@offset[+duration][:key=value,...]
  /// where `kind` is a fault kind (the clause goes to the FaultPlan, with
  /// absolute times) or a regime kind (diurnal, storm, throttle, skew,
  /// route-flip, path-loss, churn; times are offsets into each day). Regime
  /// keys: days=A-B|A|all, site=N|all, count=K, p=X, frac=F, mag=DUR,
  /// proto=icmp[+tcp][+dns]. Errors carry "scenario spec:LINE:COL: ...".
  static Scenario parse(std::string_view spec, std::uint64_t seed = 0);

  /// Round-trips through parse(): parse(to_spec(), seed) == *this.
  std::string to_spec() const;

  /// Human-readable, one line per fault/regime.
  std::string describe() const;

  bool operator==(const Scenario&) const = default;
};

}  // namespace laces::scenario
