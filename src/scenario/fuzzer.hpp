// Seeded scenario fuzzer: unbounded scenario diversity, machine-checked.
//
// Each seed generates a random valid Scenario, runs a multi-day census
// under it inside a wall-clock watchdog, and asserts the census
// invariants the rest of the system promises:
//   * termination — the run finishes before the watchdog (no hang or
//     livelock; a watchdog fire prints the seed + spec and exits 124);
//   * exact degraded-day accounting — healthy + degraded day counts add
//     up, degraded days never leak into longitudinal denominators
//     (LongitudinalStore::check_invariants after every day), and a day
//     only degrades when the scenario licenses it (may_degrade);
//   * resume byte-identity — periodically, a seed's series is re-run with
//     a mid-series kill + --resume and the two archives are compared byte
//     for byte (manifest, checkpoint, every segment);
//   * shard equivalence — periodically, a seed's census is re-run at
//     `shard_count` sim shards and the per-day CSV digest must match the
//     1-shard run;
//   * scenario-off identity — an empty scenario run must digest-match the
//     plain baseline run (checked once per sweep).
//
// Any failing seed reproduces bit-for-bit:
//   laces census --scenario '<printed spec>' --scenario-seed <seed> ...
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "topo/world.hpp"

namespace laces::scenario {

struct FuzzOptions {
  std::uint64_t start_seed = 1;
  int seeds = 20;
  std::uint32_t days = 2;
  /// Per-seed wall-clock budget before the watchdog declares a hang.
  double timeout_seconds = 120.0;
  /// Every Nth seed additionally runs the kill-and-resume byte check
  /// (0 disables).
  int resume_check_every = 5;
  /// Every Nth seed additionally runs the shard-equivalence check
  /// (0 disables).
  int shard_check_every = 7;
  std::size_t shard_count = 4;
  /// Scratch directory for the resume checks' archives.
  std::filesystem::path work_dir = "fuzz-scenarios-work";
  /// World the censuses run against (generated once per sweep).
  topo::WorldConfig world = default_fuzz_world_config();
  /// Anycast-stage probing rate (keeps per-seed sim time small).
  double targets_per_second = 50000.0;
  /// Per-scenario generation shape; `sites` is overridden with the actual
  /// worker count at run time.
  GenerateOptions generate;
  /// Print one line per seed (the CLI does; library callers may not).
  bool verbose = false;

  /// The fuzzer's default substrate: ~100 prefixes with every deployment
  /// family present (the test suite's tiny world).
  static topo::WorldConfig default_fuzz_world_config();
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string spec;
  std::string what;
};

struct FuzzSummary {
  int ran = 0;
  int resume_checks = 0;
  int shard_checks = 0;
  std::uint64_t regimes_applied = 0;
  std::uint64_t degraded_days = 0;
  std::uint64_t worker_outages = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Runs the sweep. Pure function of (options) — same options, same
/// verdicts. The watchdog aborts the process (exit 124) on a hang, since
/// a hung event loop cannot be unwound from within.
FuzzSummary run_fuzz(const FuzzOptions& options);

}  // namespace laces::scenario
