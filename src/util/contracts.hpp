// Lightweight Expects()/Ensures()-style contracts (C++ Core Guidelines I.6/I.8).
//
// Violations throw ContractViolation carrying the failing expression and the
// source location, so tests can assert on precondition enforcement.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace laces {

/// Thrown when a precondition, postcondition or invariant does not hold.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr,
                    const std::source_location& loc)
      : std::logic_error(std::string(kind) + " failed: " + expr + " at " +
                         loc.file_name() + ":" + std::to_string(loc.line())) {}
};

/// Precondition check: call at function entry.
inline void expects(
    bool cond, const char* expr = "precondition",
    const std::source_location& loc = std::source_location::current()) {
  if (!cond) throw ContractViolation("Expects", expr, loc);
}

/// Postcondition check: call before returning.
inline void ensures(
    bool cond, const char* expr = "postcondition",
    const std::source_location& loc = std::source_location::current()) {
  if (!cond) throw ContractViolation("Ensures", expr, loc);
}

}  // namespace laces
