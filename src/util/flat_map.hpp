// Open-addressing flat hash map with 64-bit keys.
//
// The simulator keeps several per-packet side tables (per-flow ECMP
// sequence numbers, per-target rate-limit arrival times, CHAOS rotation
// counters, interface indices) that are looked up once or twice for every
// simulated packet. std::unordered_map pays a pointer chase and a heap
// allocation per node; FlatMap64 stores slots contiguously (linear probing,
// power-of-two capacity) so a hit is one or two adjacent cache lines and
// inserts amortise to zero allocations once the table has grown.
//
// Determinism: lookups depend only on key equality, never on slot order,
// and the map intentionally exposes no iteration order — callers that need
// ordered traversal must collect and sort keys themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace laces {

/// Open-addressing hash map from std::uint64_t to `Value`.
template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Pre-size for `n` entries without rehashing on the way there.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 / 4 < n) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  Value* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  const Value* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Get-or-default-insert (the per-packet counter idiom `m[k]++`).
  Value& operator[](std::uint64_t key) {
    maybe_grow();
    for (std::size_t i = probe_start(key);; i = next(i)) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = Value{};
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
    }
  }

  /// Insert or overwrite.
  void insert_or_assign(std::uint64_t key, Value value) {
    (*this)[key] = std::move(value);
  }

  /// Removes `key` if present (backward-shift deletion: no tombstones, so
  /// probe sequences stay short no matter how many erases happen).
  bool erase(std::uint64_t key) {
    if (slots_.empty()) return false;
    std::size_t i = probe_start(key);
    for (;; i = next(i)) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == key) break;
    }
    std::size_t hole = i;
    for (std::size_t j = next(hole);; j = next(j)) {
      if (!slots_[j].used) break;
      // An entry may shift back only if its home slot is not inside
      // (hole, j] — the standard backward-shift condition on a ring.
      const std::size_t home = probe_start(slots_[j].key);
      const bool movable = (j > hole) ? (home <= hole || home > j)
                                      : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    std::uint64_t key = 0;
    Value value{};
    bool used = false;
  };

  /// Finalizing mixer (splitmix64 tail): keys are often already hashes,
  /// but cheap insurance for sequential ids used as keys.
  static std::size_t mix(std::uint64_t key) {
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(key ^ (key >> 31));
  }

  std::size_t probe_start(std::uint64_t key) const {
    return mix(key) & (slots_.size() - 1);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (slots_.size() - 1); }

  void maybe_grow() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > slots_.size() * 3 / 4) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    expects((new_capacity & (new_capacity - 1)) == 0, "power-of-two capacity");
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (Slot& s : old) {
      if (!s.used) continue;
      for (std::size_t i = probe_start(s.key);; i = next(i)) {
        if (!slots_[i].used) {
          slots_[i] = std::move(s);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace laces
