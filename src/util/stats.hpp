// Small statistics helpers shared by analysis code and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace laces {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Interpolated percentile, p in [0, 100]. Requires a non-empty input.
/// Takes a view and selects the two needed order statistics with
/// std::nth_element on an internal copy — no caller-side copy or full sort.
double percentile(std::span<const double> xs, double p);
inline double percentile(std::initializer_list<double> xs, double p) {
  return percentile(std::span<const double>(xs.begin(), xs.size()), p);
}

/// Median (50th percentile). Requires a non-empty input.
double median(std::span<const double> xs);
inline double median(std::initializer_list<double> xs) {
  return median(std::span<const double>(xs.begin(), xs.size()));
}

/// Empirical CDF point list: sorted (value, cumulative fraction) pairs,
/// one entry per distinct value.
struct CdfPoint {
  double value;
  double fraction;
};
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

}  // namespace laces
