// Simulated time.
//
// All measurement components run against SimTime, never wall time, so a
// 13-minute inter-probe interval (the MAnycast^2 baseline of Figure 4)
// costs microseconds of wall time to simulate (DESIGN.md decision 1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace laces {

/// Duration in simulated nanoseconds. Strong type to keep units explicit.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  static constexpr SimDuration nanos(std::int64_t v) { return SimDuration(v); }
  static constexpr SimDuration micros(std::int64_t v) {
    return SimDuration(v * 1'000);
  }
  static constexpr SimDuration millis(std::int64_t v) {
    return SimDuration(v * 1'000'000);
  }
  static constexpr SimDuration seconds(std::int64_t v) {
    return SimDuration(v * 1'000'000'000);
  }
  static constexpr SimDuration minutes(std::int64_t v) {
    return seconds(v * 60);
  }
  static constexpr SimDuration hours(std::int64_t v) { return minutes(v * 60); }
  static constexpr SimDuration days(std::int64_t v) { return hours(v * 24); }
  /// From floating-point seconds (e.g. RTTs derived from distance).
  static constexpr SimDuration from_seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e9));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(ns_ + o.ns_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(ns_ - o.ns_);
  }
  constexpr SimDuration operator*(std::int64_t k) const {
    return SimDuration(ns_ * k);
  }
  constexpr SimDuration operator/(std::int64_t k) const {
    return SimDuration(ns_ / k);
  }
  constexpr auto operator<=>(const SimDuration&) const = default;

 private:
  std::int64_t ns_ = 0;
};

/// Point in simulated time (nanoseconds since simulation epoch).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime epoch() { return SimTime(0); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(ns_ + d.ns());
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime(ns_ - d.ns());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration(ns_ - o.ns_);
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  std::int64_t ns_ = 0;
};

/// Human-readable rendering, e.g. "2.5s" or "13m20s".
std::string to_string(SimDuration d);

}  // namespace laces
