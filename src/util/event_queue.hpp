// Discrete-event simulation core.
//
// The orchestrator, workers and the simulated network all schedule callbacks
// on one EventQueue; run() drains events in timestamp order (FIFO within a
// timestamp), advancing the simulated clock.
//
// The queue is the innermost loop of every experiment, so it is built for
// per-event cost: callbacks are InlineCallback (no allocation for captures
// up to kInlineCallbackSize bytes) and the (timestamp, FIFO-seq) ordering
// runs on a hand-rolled 4-ary min-heap over a flat vector — after warm-up
// a scheduled packet event touches no allocator at all. The heap stores
// only 16-byte trivially-copyable (at, seq·slot) entries; the callbacks
// sit still in a slot pool, so a sift step is a flat two-word move instead
// of an indirect callback relocation, and the 4-ary layout halves the sift
// depth of a binary heap (a census-sized heap outgrows L2, so pop cost is
// one cache miss per level). The (at, seq) comparator is a total order, so
// heap pop order — and therefore simulation output — is identical to the
// previous std::priority_queue implementation regardless of heap shape.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/callback.hpp"
#include "util/simtime.hpp"

namespace laces {

/// Handle to a scheduled event, usable with EventQueue::cancel().
/// kInvalidEventId never names a live event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Sentinel "no pending event" timestamp (EventQueue::next_event_time).
inline constexpr SimTime kSimTimeMax = SimTime(0x7fffffffffffffffLL);

/// Timestamp-ordered callback queue driving simulated time.
class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Current simulated time. Readable from any thread (relaxed; free on
  /// mainstream ISAs): the flight recorder stamps sim_ns from whichever
  /// thread records, including sharded-loop workers observing shard 0's
  /// clock. All mutation stays on the thread driving the queue.
  SimTime now() const {
    return SimTime(now_ns_.load(std::memory_order_relaxed));
  }

  /// Schedule `cb` to run at absolute time `at` (clamped to now()).
  /// The returned id stays valid until the event runs or is canceled.
  EventId schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` to run `delay` after now().
  EventId schedule_after(SimDuration delay, Callback cb) {
    return schedule_at(now() + delay, std::move(cb));
  }

  /// Cancel a pending event. A canceled event is discarded without running
  /// and — crucially for determinism — without advancing now(), so a
  /// canceled watchdog can never stretch the simulated timeline. Callers
  /// must not cancel ids of events that already ran (the id would linger
  /// in the canceled set); kInvalidEventId is ignored.
  void cancel(EventId id);

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`;
  /// events after the deadline stay queued. Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Run every event with timestamp strictly before `end` (a barrier-epoch
  /// window of the sharded loop). Unlike run_until(), now() is NOT advanced
  /// when the window is idle: a shard's clock only moves when it executes,
  /// so cross-shard messages merged later can never land in a shard's past.
  std::size_t run_window(SimTime end);

  /// Timestamp of the earliest live (non-canceled) pending event, or
  /// kSimTimeMax when none; canceled stubs at the heap top are discarded.
  /// The sharded loop uses this to pick the next epoch window start.
  SimTime next_event_time();

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  /// Pending events not yet canceled (drain checks ignore canceled stubs).
  std::size_t pending_live() const { return heap_.size() - canceled_.size(); }

  /// Pre-size the heap and slot-pool storage (lets tests assert the steady
  /// state does zero allocations per event).
  void reserve(std::size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
    free_.reserve(n);
  }

 private:
  /// Heap key: trivially copyable, so sift moves are cheap flat copies.
  /// The low 24 bits of `seq_slot` index the callback in the side pool;
  /// the high 40 bits are the FIFO sequence number. Since the sequence is
  /// unique, comparing the packed word within a timestamp orders exactly
  /// by sequence — the slot bits can never influence pop order.
  struct Entry {
    SimTime at;
    std::uint64_t seq_slot;

    bool before(const Entry& o) const {
      if (at != o.at) return at < o.at;
      return seq_slot < o.seq_slot;
    }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
  };
  static constexpr std::uint64_t kSlotMask = (1ULL << 24) - 1;

  /// Remove the minimum entry and move its callback out of the pool (so
  /// the callback may freely schedule new events while it runs). Sets
  /// `at_out` to the event's timestamp.
  Callback pop_min(SimTime& at_out);

  /// If the minimum entry was canceled, drop it (without touching now_)
  /// and return true.
  bool discard_if_canceled();

  std::vector<Entry> heap_;     // binary min-heap ordered by (at, seq)
  std::vector<Callback> slots_; // callback pool, indexed by Entry::slot
  std::vector<std::uint32_t> free_;  // recycled slot indices (LIFO)
  /// EventIds (seq_slot + 1) canceled but still parked in the heap. The run
  /// loops pay one empty() check per event while this is empty, so the
  /// fault-free hot path is unchanged.
  std::unordered_set<EventId> canceled_;
  /// Sim clock in ns. Atomic only so concurrent now() readers (telemetry
  /// stamping from other threads) are race-free; relaxed ops keep the
  /// single-driver hot path at plain load/store cost.
  std::atomic<std::int64_t> now_ns_{0};
  std::uint64_t next_seq_ = 0;
};

}  // namespace laces
