// Discrete-event simulation core.
//
// The orchestrator, workers and the simulated network all schedule callbacks
// on one EventQueue; run() drains events in timestamp order (FIFO within a
// timestamp), advancing the simulated clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/simtime.hpp"

namespace laces {

/// Timestamp-ordered callback queue driving simulated time.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` to run `delay` after now().
  void schedule_after(SimDuration delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Run until the queue drains or simulated time would exceed `deadline`;
  /// events after the deadline stay queued. Returns events executed.
  std::size_t run_until(SimTime deadline);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break within a timestamp
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
};

}  // namespace laces
