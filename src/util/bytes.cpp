#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace laces {

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw DecodeError("patch out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  auto raw = bytes(n);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

void ByteWriter::svarint(std::int64_t v) { varint(zigzag_encode(v)); }

std::uint64_t ByteReader::varint() {
  std::uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    const std::uint64_t group = b & 0x7F;
    // The 10th byte carries bits 63..69; anything beyond bit 63 set means
    // the encoding does not fit u64.
    if (shift == 63 && group > 1) throw DecodeError("varint overflows u64");
    out |= group << shift;
    if ((b & 0x80) == 0) return out;
  }
  throw DecodeError("varint longer than 10 bytes");
}

std::int64_t ByteReader::svarint() { return zigzag_decode(varint()); }

std::vector<std::uint64_t> delta_encode(std::span<const std::uint64_t> xs) {
  std::vector<std::uint64_t> out;
  out.reserve(xs.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t x : xs) {
    out.push_back(x - prev);  // wrapping
    prev = x;
  }
  return out;
}

std::vector<std::uint64_t> delta_decode(std::span<const std::uint64_t> ds) {
  std::vector<std::uint64_t> out;
  out.reserve(ds.size());
  std::uint64_t acc = 0;
  for (const std::uint64_t d : ds) {
    acc += d;  // wrapping
    out.push_back(acc);
  }
  return out;
}

void put_delta_column(ByteWriter& w, std::span<const std::uint64_t> xs) {
  std::uint64_t prev = 0;
  for (const std::uint64_t x : xs) {
    // Signed delta via zigzag: a descending step costs no more than the
    // equivalent ascending one (wrap-around u64 deltas would need 10
    // bytes for any negative step).
    w.svarint(static_cast<std::int64_t>(x - prev));
    prev = x;
  }
}

std::vector<std::uint64_t> get_delta_column(ByteReader& r, std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += static_cast<std::uint64_t>(r.svarint());
    out.push_back(acc);
  }
  return out;
}

}  // namespace laces
