#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace laces {

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw DecodeError("patch out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  auto raw = bytes(n);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

}  // namespace laces
