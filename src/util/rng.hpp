// Deterministic random number generation for the simulator.
//
// Every stochastic element of the simulated Internet is driven by a seeded
// Rng (xoshiro256**), so whole censuses are reproducible bit-for-bit.
// StableHash provides seedable, order-independent hashing used for
// per-(target, site) routing perturbations and ECMP flow hashing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace laces {

/// splitmix64 step; used for seeding and as a cheap mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1ace50001ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Pick a uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fork a statistically independent child generator; deterministic in
  /// (parent state, salt). The parent state is not advanced.
  Rng fork(std::uint64_t salt) const;

  /// Raw generator state, for checkpointing (laces_store resume): a
  /// restored generator continues the exact draw sequence.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Seedable 64-bit hash (FNV-1a core with splitmix finalizer). Deterministic
/// across runs and platforms; NOT cryptographic.
class StableHash {
 public:
  explicit StableHash(std::uint64_t seed = 0) : h_(seed ^ kOffset) {}

  StableHash& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= kPrime;
    }
    return *this;
  }
  StableHash& mix(std::uint32_t v) { return mix(std::uint64_t{v}); }
  StableHash& mix(std::string_view s) {
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= kPrime;
    }
    return *this;
  }
  StableHash& mix(std::span<const std::uint8_t> bytes) {
    for (auto b : bytes) {
      h_ ^= b;
      h_ *= kPrime;
    }
    return *this;
  }

  /// Finalized hash value.
  std::uint64_t value() const {
    std::uint64_t s = h_;
    return splitmix64(s);
  }

  /// Finalized hash mapped to [0, 1).
  double unit() const {
    return static_cast<double>(value() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h_;
};

/// Fisher-Yates shuffle with a deterministic Rng.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    using std::swap;
    swap(v[i - 1], v[rng.index(i)]);
  }
}

}  // namespace laces
