// Move-only callable with inline (small-buffer) storage.
//
// std::function heap-allocates any capture larger than 2-3 pointers, which
// made every scheduled packet event in the simulator an allocation. The
// event hot path captures [this + Datagram + a few ids] — on the order of
// 100 bytes — so InlineCallback reserves enough inline storage for every
// capture the simulator schedules (see kInlineCallbackSize) and only falls
// back to the heap for larger or throwing-move callables.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace laces {

/// Inline capacity of InlineCallback. Sized for the largest hot-path
/// capture (SimNetwork::deliver_to_target: this + shared-buffer Datagram +
/// deployment/pop/salt ids); growing a capture past this silently degrades
/// to one heap allocation per event, which bench_perf_events would surface.
inline constexpr std::size_t kInlineCallbackSize = 120;

/// Move-only `void()` callable with small-buffer optimisation.
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT: implicit by design (lambda -> callback)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True if the wrapped callable lives in the inline buffer (no heap
  /// allocation). Exposed so tests can assert the hot-path captures fit.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src` and destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCallbackSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) noexcept { std::launder(static_cast<Fn*>(p))->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**std::launder(static_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(static_cast<Fn**>(p)); },
      false,
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCallbackSize];
  const Ops* ops_ = nullptr;
};

}  // namespace laces
