#include "util/simtime.hpp"

#include <cstdio>

namespace laces {

std::string to_string(SimDuration d) {
  char buf[64];
  const std::int64_t ns = d.ns();
  const std::int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns >= 60'000'000'000LL) {
    const std::int64_t total_s = ns / 1'000'000'000LL;
    std::snprintf(buf, sizeof buf, "%lldm%llds",
                  static_cast<long long>(total_s / 60),
                  static_cast<long long>(total_s % 60 < 0 ? -(total_s % 60)
                                                          : total_s % 60));
  } else if (abs_ns >= 1'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  } else if (abs_ns >= 1'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (abs_ns >= 1'000LL) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace laces
