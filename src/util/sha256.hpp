// Self-contained SHA-256 and HMAC-SHA256.
//
// Used to authenticate Orchestrator<->Worker channel frames (paper R8:
// "secure inter-component communication"). No external crypto dependency.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace laces {

/// 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span(reinterpret_cast<const std::uint8_t*>(s.data()),
                     s.size()));
  }
  /// Finalizes and returns the digest; the object must be reset() before
  /// further use.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(std::span<const std::uint8_t> data);
  static Sha256Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 (RFC 2104) over `data` with `key`.
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);
Sha256Digest hmac_sha256(std::string_view key, std::string_view data);

/// Constant-time digest comparison.
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

/// Lowercase hex rendering of a digest.
std::string to_hex(const Sha256Digest& d);

}  // namespace laces
