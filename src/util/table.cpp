#include "util/table.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace laces {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  expects(!header_.empty(), "non-empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "row arity matches header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string with_commas(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return neg ? "-" + out : out;
}

std::string pct(double numerator, double denominator, int decimals) {
  if (denominator == 0.0) return "n/a";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals,
                100.0 * numerator / denominator);
  return buf;
}

std::string fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace laces
