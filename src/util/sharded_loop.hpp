// Deterministic parallel event loop: conservative barrier-epoch PDES.
//
// S event queues ("shards") advance together through bounded time epochs.
// Every epoch the loop finds the globally earliest pending event time m and
// lets each shard execute its events in [m, m + E) on its own thread, where
// E (the epoch length) equals the minimum cross-shard latency of the model
// — the classical conservative lookahead. Work crossing shards is never
// scheduled directly on a foreign queue; it is posted into a per-(src, dst)
// outbox and merged at the next barrier in the canonical order
//
//     (at, src_shard, issue_seq)
//
// which is a pure function of simulated history, not thread timing. Posts
// must carry `at >= issue_time + E` (asserted at merge): combined with the
// window bound this guarantees a merged event can never land in the
// receiving shard's past, so executing shards in parallel is
// indistinguishable from a sequential run — the property the 1/2/4/8-shard
// byte-identity tests pin down. With one shard the loop degenerates to
// EventQueue::run() exactly.
//
// Threading model: shard 0 runs on the caller's thread (it owns the
// control plane in SimNetwork's use), shards 1..S-1 on persistent worker
// threads woken per epoch through one mutex/condvar pair. Outboxes are
// plain vectors: a worker only touches its own row during a window, and
// the barrier's mutex hand-off sequences the main thread's merge against
// all worker writes (TSan-clean by construction).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/event_queue.hpp"

namespace laces {

class ShardedLoop {
 public:
  /// `shard0` is the caller-owned queue that becomes shard 0; `shards - 1`
  /// additional queues (and worker threads) are created here. `epoch` is
  /// the conservative lookahead E: every cross-shard post must be
  /// timestamped at least E after its issue time. `thread_init`, if set,
  /// runs once on each worker thread in ascending shard order (1, 2, ...)
  /// before any epoch — callers use it to register per-thread telemetry
  /// state (flight-recorder rings) in a deterministic order.
  ShardedLoop(EventQueue& shard0, std::size_t shards, SimDuration epoch,
              std::function<void(std::size_t shard)> thread_init = {});
  ~ShardedLoop();

  ShardedLoop(const ShardedLoop&) = delete;
  ShardedLoop& operator=(const ShardedLoop&) = delete;

  std::size_t shards() const { return queues_.size(); }
  SimDuration epoch() const { return epoch_; }

  /// The shard's event queue. Outside run(), any shard's queue may be
  /// inspected from the driving thread; during run(), shard k's queue must
  /// only be touched by code executing on shard k.
  EventQueue& queue(std::size_t shard);

  /// Post a callback from code running on shard `src` to run on shard
  /// `dst` at absolute time `at` (>= issue time + epoch, asserted at the
  /// merge). Delivery order is canonical: (at, src, per-pair issue seq).
  void post(std::size_t src, std::size_t dst, SimTime at,
            EventQueue::Callback cb);

  /// Post a cancellation of an event previously scheduled on shard `dst`
  /// (its id was carried back across shards). Applied at the next barrier,
  /// before that epoch's schedules.
  void post_cancel(std::size_t src, std::size_t dst, EventId id);

  /// Run epochs until every shard queue and outbox drains. Returns total
  /// events executed across shards. Deterministic for a given schedule of
  /// events and posts, independent of thread timing.
  std::size_t run();

  // --- accounting (valid between run() calls) ---
  /// Sum of pending / pending_live over all shard queues.
  std::size_t pending() const;
  std::size_t pending_live() const;
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t cross_shard_events() const { return cross_shard_events_; }
  std::uint64_t cross_shard_cancels() const { return cross_shard_cancels_; }
  /// Wall time the driving thread spent blocked at epoch barriers.
  std::uint64_t barrier_stall_ns() const { return barrier_stall_ns_; }

 private:
  struct Message {
    SimTime at;
    std::uint64_t seq = 0;  // per-(src, dst) issue order
    EventId cancel_id = kInvalidEventId;
    EventQueue::Callback cb;
  };
  /// One direction of a shard pair: written only by src's thread during a
  /// window, drained only by the main thread at the barrier.
  struct Outbox {
    std::vector<Message> messages;
    std::uint64_t next_seq = 0;
  };

  /// A message waiting to merge, tagged with its source shard (the merge
  /// comparator's tiebreak between equal timestamps).
  struct Pending {
    std::size_t src = 0;
    Message* msg = nullptr;
  };

  Outbox& outbox(std::size_t src, std::size_t dst) {
    return outboxes_[src * queues_.size() + dst];
  }
  void merge_mailboxes();
  void start_workers();
  void worker_main(std::size_t shard);

  const SimDuration epoch_;
  std::vector<EventQueue*> queues_;  // [0] borrowed, rest owned below
  std::vector<std::unique_ptr<EventQueue>> owned_;
  std::vector<Outbox> outboxes_;  // S x S, row-major [src][dst]
  std::vector<Pending> merge_scratch_;
  /// Earliest admissible timestamp for the next merge: the previous
  /// window's end. Posts below it would mean the lookahead was violated.
  SimTime merge_floor_ = SimTime::epoch();

  // Epoch hand-off (workers sleep between epochs and between runs).
  std::function<void(std::size_t)> thread_init_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::condition_variable init_cv_;
  std::size_t init_turn_ = 1;  // next shard allowed to run thread_init_
  std::vector<std::thread> workers_;
  std::vector<std::uint64_t> worker_seen_;  // last epoch signal each handled
  std::uint64_t epoch_signal_ = 0;
  SimTime window_end_ = SimTime::epoch();
  std::size_t running_ = 0;
  std::size_t worker_executed_ = 0;
  bool stop_ = false;

  std::uint64_t epochs_ = 0;
  std::uint64_t cross_shard_events_ = 0;
  std::uint64_t cross_shard_cancels_ = 0;
  std::uint64_t barrier_stall_ns_ = 0;
};

}  // namespace laces
