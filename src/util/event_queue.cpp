#include "util/event_queue.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace laces {

EventId EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now()) at = now();

  // Park the callback in the slot pool; only the 16-byte key enters the
  // heap, so the sift below never touches the callback.
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    expects(slot <= kSlotMask, "event slot pool fits 24-bit indices");
    slots_.push_back(std::move(cb));
  }

  const Entry ev{at, (next_seq_++ << 24) | slot};
  // Hole-based sift-up: shift ancestors down into the hole, then place the
  // new entry once (one move per level instead of a three-move swap).
  heap_.emplace_back();
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!ev.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
  return ev.seq_slot + 1;
}

void EventQueue::cancel(EventId id) {
  if (id != kInvalidEventId) canceled_.insert(id);
}

bool EventQueue::discard_if_canceled() {
  if (canceled_.empty() || canceled_.erase(heap_.front().seq_slot + 1) == 0) {
    return false;
  }
  SimTime at;
  (void)pop_min(at);  // drop the callback; now_ stays where it was
  return true;
}

EventQueue::Callback EventQueue::pop_min(SimTime& at_out) {
  const Entry min = heap_.front();
  at_out = min.at;
  const std::uint32_t slot = min.slot();
  Callback cb = std::move(slots_[slot]);
  free_.push_back(slot);

  if (heap_.size() > 1) {
    // Hole-based sift-down of the last entry from the root.
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t smallest = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_[c].before(heap_[smallest])) smallest = c;
      }
      if (!heap_[smallest].before(last)) break;
      heap_[i] = heap_[smallest];
      i = smallest;
    }
    heap_[i] = last;
  } else {
    heap_.pop_back();
  }
  return cb;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    if (discard_if_canceled()) continue;
    // The callback is moved fully off the pool before it runs, so it may
    // schedule new events.
    SimTime at;
    Callback cb = pop_min(at);
    now_ns_.store(at.ns(), std::memory_order_relaxed);
    cb();
    ++executed;
  }
  return executed;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().at <= deadline) {
    if (discard_if_canceled()) continue;
    SimTime at;
    Callback cb = pop_min(at);
    now_ns_.store(at.ns(), std::memory_order_relaxed);
    cb();
    ++executed;
  }
  if (now() < deadline) now_ns_.store(deadline.ns(), std::memory_order_relaxed);
  return executed;
}

std::size_t EventQueue::run_window(SimTime end) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().at < end) {
    if (discard_if_canceled()) continue;
    SimTime at;
    Callback cb = pop_min(at);
    now_ns_.store(at.ns(), std::memory_order_relaxed);
    cb();
    ++executed;
  }
  // Deliberately no clamp of now() to `end`: an idle window must leave the
  // shard clock where its last event ran, so messages merged afterwards
  // (timestamped >= the window end by the lookahead contract) are always
  // scheduled in this shard's future.
  return executed;
}

SimTime EventQueue::next_event_time() {
  while (!heap_.empty() && discard_if_canceled()) {
  }
  return heap_.empty() ? kSimTimeMax : heap_.front().at;
}

}  // namespace laces
