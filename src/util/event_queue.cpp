#include "util/event_queue.hpp"

#include <utility>

namespace laces {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  events_.push(Event{at, next_seq_++, std::move(cb)});
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (!events_.empty()) {
    // The callback is moved out before pop() so it may schedule new events.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ev.cb();
    ++executed;
  }
  return executed;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ev.cb();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace laces
