#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace laces {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  expects(!xs.empty(), "non-empty sample");
  expects(p >= 0.0 && p <= 100.0, "p in [0,100]");
  if (xs.size() == 1) return xs.front();
  std::vector<double> buf(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(buf.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  // Only the lo-th (and for interpolation the next) order statistic matters:
  // partition instead of sorting the whole sample.
  const auto lo_it = buf.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(buf.begin(), lo_it, buf.end());
  const double a = *lo_it;
  if (frac == 0.0 || lo + 1 >= buf.size()) return a;
  const double b = *std::min_element(lo_it + 1, buf.end());
  return a + frac * (b - a);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::vector<CdfPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  std::size_t i = 0;
  while (i < xs.size()) {
    std::size_t j = i;
    while (j < xs.size() && xs[j] == xs[i]) ++j;
    out.push_back(CdfPoint{xs[i], static_cast<double>(j) / n});
    i = j;
  }
  return out;
}

}  // namespace laces
