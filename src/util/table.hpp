// Plain-text table rendering for bench/experiment output.
//
// Every experiment harness prints paper-style tables; this keeps the
// formatting in one place so outputs line up and are diffable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace laces {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column padding and a rule under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Thousands-separated integer, e.g. 13692 -> "13,692".
std::string with_commas(std::int64_t v);

/// Fixed-point percentage, e.g. (524, 13692) -> "3.8%".
std::string pct(double numerator, double denominator, int decimals = 1);

/// Fixed-point double.
std::string fixed(double v, int decimals);

}  // namespace laces
