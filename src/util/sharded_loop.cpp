#include "util/sharded_loop.hpp"

#include <algorithm>
#include <chrono>

#include "util/contracts.hpp"

namespace laces {

ShardedLoop::ShardedLoop(EventQueue& shard0, std::size_t shards,
                         SimDuration epoch,
                         std::function<void(std::size_t)> thread_init)
    : epoch_(epoch), thread_init_(std::move(thread_init)) {
  expects(shards >= 1 && shards <= 64, "1..64 shards");
  expects(epoch.ns() > 0, "positive epoch (lookahead)");
  queues_.reserve(shards);
  queues_.push_back(&shard0);
  for (std::size_t i = 1; i < shards; ++i) {
    owned_.push_back(std::make_unique<EventQueue>());
    queues_.push_back(owned_.back().get());
  }
  outboxes_.resize(shards * shards);
  if (shards > 1) start_workers();
}

ShardedLoop::~ShardedLoop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

EventQueue& ShardedLoop::queue(std::size_t shard) {
  expects(shard < queues_.size(), "valid shard");
  return *queues_[shard];
}

void ShardedLoop::post(std::size_t src, std::size_t dst, SimTime at,
                       EventQueue::Callback cb) {
  expects(src < queues_.size() && dst < queues_.size(), "valid shard pair");
  Outbox& box = outbox(src, dst);
  box.messages.push_back(
      Message{at, box.next_seq++, kInvalidEventId, std::move(cb)});
}

void ShardedLoop::post_cancel(std::size_t src, std::size_t dst, EventId id) {
  expects(src < queues_.size() && dst < queues_.size(), "valid shard pair");
  Outbox& box = outbox(src, dst);
  box.messages.push_back(Message{SimTime::epoch(), box.next_seq++, id, {}});
}

void ShardedLoop::merge_mailboxes() {
  const std::size_t n = queues_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    // Gather this destination's column. Cancels apply first (they name
    // events scheduled in earlier epochs); schedules then land in the
    // canonical (at, src, seq) order, so the FIFO sequence numbers the
    // destination queue assigns — and therefore its pop order — are a pure
    // function of simulated history.
    merge_scratch_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      Outbox& box = outbox(src, dst);
      for (auto& m : box.messages) {
        merge_scratch_.push_back(Pending{src, &m});
      }
    }
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Pending& a, const Pending& b) {
                if (a.msg->at != b.msg->at) return a.msg->at < b.msg->at;
                if (a.src != b.src) return a.src < b.src;
                return a.msg->seq < b.msg->seq;
              });
    EventQueue& q = *queues_[dst];
    for (const Pending& p : merge_scratch_) {
      if (p.msg->cancel_id != kInvalidEventId) {
        q.cancel(p.msg->cancel_id);
        ++cross_shard_cancels_;
        continue;
      }
      expects(p.msg->at >= merge_floor_,
              "cross-shard post violates the epoch lookahead");
      q.schedule_at(p.msg->at, std::move(p.msg->cb));
      ++cross_shard_events_;
    }
    for (std::size_t src = 0; src < n; ++src) {
      outbox(src, dst).messages.clear();
    }
  }
}

std::size_t ShardedLoop::run() {
  if (queues_.size() == 1) {
    // Degenerate mode: exactly the sequential loop.
    return queues_[0]->run();
  }

  std::size_t executed = 0;
  for (;;) {
    merge_mailboxes();

    SimTime m = kSimTimeMax;
    for (EventQueue* q : queues_) {
      m = std::min(m, q->next_event_time());
    }
    if (m == kSimTimeMax) break;  // all queues and outboxes drained

    const SimTime end = m + epoch_;
    merge_floor_ = end;
    ++epochs_;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      window_end_ = end;
      running_ = queues_.size() - 1;
      ++epoch_signal_;
    }
    wake_cv_.notify_all();

    executed += queues_[0]->run_window(end);

    std::unique_lock<std::mutex> lock(mutex_);
    const auto stall_from = std::chrono::steady_clock::now();
    done_cv_.wait(lock, [this] { return running_ == 0; });
    barrier_stall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - stall_from)
            .count());
    executed += worker_executed_;
    worker_executed_ = 0;
  }
  return executed;
}

std::size_t ShardedLoop::pending() const {
  std::size_t n = 0;
  for (const EventQueue* q : queues_) n += q->pending();
  return n;
}

std::size_t ShardedLoop::pending_live() const {
  std::size_t n = 0;
  for (const EventQueue* q : queues_) n += q->pending_live();
  return n;
}

void ShardedLoop::start_workers() {
  worker_seen_.assign(queues_.size(), 0);
  workers_.reserve(queues_.size() - 1);
  for (std::size_t shard = 1; shard < queues_.size(); ++shard) {
    workers_.emplace_back([this, shard] { worker_main(shard); });
  }
}

void ShardedLoop::worker_main(std::size_t shard) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Sequenced per-thread init: shard 1 first, then 2, ... so any state a
  // caller registers per thread (flight-recorder rings) gets deterministic
  // ids regardless of which thread the OS happens to start first.
  init_cv_.wait(lock, [this, shard] { return init_turn_ == shard; });
  if (thread_init_) {
    lock.unlock();
    thread_init_(shard);
    lock.lock();
  }
  ++init_turn_;
  init_cv_.notify_all();
  for (;;) {
    wake_cv_.wait(lock, [this, shard] {
      return stop_ || epoch_signal_ > worker_seen_[shard];
    });
    if (stop_) return;
    worker_seen_[shard] = epoch_signal_;
    const SimTime end = window_end_;
    lock.unlock();
    const std::size_t n = queues_[shard]->run_window(end);
    lock.lock();
    worker_executed_ += n;
    if (--running_ == 0) done_cv_.notify_one();
  }
}

}  // namespace laces
