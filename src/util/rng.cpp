#include "util/rng.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace laces {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  expects(lo <= hi, "lo <= hi");
  const std::uint64_t range = hi - lo;
  if (range == ~0ULL) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = range + 1;
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % bound) - 1;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r > limit);
  return lo + r % bound;
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  expects(lo <= hi, "lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  // Marsaglia polar method; discard the second deviate for simplicity.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::exponential(double mean) {
  expects(mean > 0.0, "mean > 0");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t n) {
  expects(n > 0, "n > 0");
  return static_cast<std::size_t>(uniform_int(0, n - 1));
}

Rng Rng::fork(std::uint64_t salt) const {
  StableHash h(salt);
  h.mix(state_[0]).mix(state_[1]).mix(state_[2]).mix(state_[3]);
  return Rng(h.value());
}

}  // namespace laces
