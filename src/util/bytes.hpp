// Big-endian (network byte order) byte buffer serialization.
//
// Used both for on-the-wire probe packets (src/net) and for the framed
// Orchestrator<->Worker message channel (src/core).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace laces {

/// Thrown by ByteReader when a read runs past the end of the buffer.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only big-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Reuse the capacity of `storage` (cleared first). Pairs with take() to
  /// recycle one scratch vector across many packet builds without
  /// reallocating per packet.
  explicit ByteWriter(std::vector<std::uint8_t>&& storage)
      : buf_(std::move(storage)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u32) string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  /// Overwrite 2 bytes at `offset` (for checksum backpatching).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  /// Borrow `n` raw bytes.
  std::span<const std::uint8_t> bytes(std::size_t n);
  /// Length-prefixed (u32) string.
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("buffer underrun");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace laces
