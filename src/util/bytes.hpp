// Big-endian (network byte order) byte buffer serialization.
//
// Used both for on-the-wire probe packets (src/net), for the framed
// Orchestrator<->Worker message channel (src/core), and — via the
// varint/zigzag/delta codecs — for the columnar census archive
// (src/store).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace laces {

/// Thrown by ByteReader when a read runs past the end of the buffer.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only big-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Reuse the capacity of `storage` (cleared first). Pairs with take() to
  /// recycle one scratch vector across many packet builds without
  /// reallocating per packet.
  explicit ByteWriter(std::vector<std::uint8_t>&& storage)
      : buf_(std::move(storage)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// LEB128 varint: 7 value bits per byte, little-group-first, high bit =
  /// continuation. 1 byte for values < 128, at most 10 bytes for 2^64-1.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-mapped signed varint (small magnitudes stay short).
  void svarint(std::int64_t v);
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u32) string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  /// Overwrite 2 bytes at `offset` (for checksum backpatching).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  /// LEB128 varint (see ByteWriter::varint). Rejects encodings longer than
  /// 10 bytes and 10-byte encodings whose final group overflows 64 bits.
  std::uint64_t varint();
  /// Zigzag-mapped signed varint.
  std::int64_t svarint();
  /// Borrow `n` raw bytes.
  std::span<const std::uint8_t> bytes(std::size_t n);
  /// Length-prefixed (u32) string.
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("buffer underrun");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Zigzag mapping: interleaves signed values onto unsigned so small
/// magnitudes of either sign get short varints (0,-1,1,-2 -> 0,1,2,3).
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Delta codec over u64 sequences (wrap-around arithmetic, so any input —
/// sorted or not — round-trips exactly; sorted inputs yield small deltas).
/// delta_encode({a0,a1,a2}) == {a0, a1-a0, a2-a1}.
std::vector<std::uint64_t> delta_encode(std::span<const std::uint64_t> xs);
/// Inverse of delta_encode (prefix sum, wrapping).
std::vector<std::uint64_t> delta_decode(std::span<const std::uint64_t> ds);

/// Columnar helpers for sorted (or near-sorted) u64 columns: first value
/// and every wrap-around delta as a zigzag varint. Any sequence
/// round-trips; nondecreasing sequences encode to ~1 byte per element.
void put_delta_column(ByteWriter& w, std::span<const std::uint64_t> xs);
/// Reads `count` values written by put_delta_column.
std::vector<std::uint64_t> get_delta_column(ByteReader& r, std::size_t count);

}  // namespace laces
