// laces — command-line front end for the simulated anycast census system.
//
//   laces world    [--seed N] [--scale K]        inspect the simulated world
//   laces census   [--days N] [--out DIR] ...    run the daily pipeline
//   laces probe    --prefix A.B.C.0/24 ...       full workup of one prefix
//   laces catchment [...]                        catchment distribution
//   laces query    --archive DIR ...             query an archived series
//   laces serve    --archive DIR ...             concurrent query server
//   laces bench-serve --archive DIR ...          query-server load test
//   laces relay    --archive DIR ...             in-process relay mesh demo
//   laces subscribe --archive DIR ...            follow a census delta feed
//
// Every subcommand builds its own deterministic world; --seed reproduces a
// run exactly. `census --archive DIR` persists each day into a laces_store
// archive (plus a resume checkpoint); `census --archive DIR --resume`
// continues a killed series byte-identically. `serve` runs the laces_serve
// thread-pool server in-process and drives scripted request lines through
// the framed protocol; `bench-serve` runs the load generator against it.
// `relay` chains N laces_mesh relays over the archive, replays the census
// delta feed down the chain, checks byte-identity at the tail, and answers
// scripted queries forwarded hop-by-hop back to the origin server.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "census/longitudinal.hpp"
#include "census/output.hpp"
#include "census/pipeline.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "core/classify.hpp"
#include "core/session.hpp"
#include "gcd/classify.hpp"
#include "hitlist/hitlist.hpp"
#include "mesh/relay.hpp"
#include "platform/latency.hpp"
#include "platform/platform.hpp"
#include "platform/traceroute.hpp"
#include "scenario/fuzzer.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "serve/json.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "store/archive.hpp"
#include "store/query.hpp"
#include "topo/network.hpp"
#include "topo/world.hpp"
#include "util/table.hpp"

namespace {

using namespace laces;

struct Args {
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stol(it->second);
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    std::string value = "true";
    if (const auto eq = key.find('='); eq != std::string::npos) {
      // --key=value form.
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

topo::WorldConfig world_config(const Args& args) {
  topo::WorldConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const long scale = args.get_int("scale", 8);
  if (scale > 1) {
    const auto s = static_cast<std::size_t>(scale);
    cfg.v4_unicast /= s;
    cfg.v4_unresponsive /= s;
    cfg.v4_medium_anycast_orgs /= s;
    cfg.v4_regional_anycast /= s;
    cfg.v4_global_bgp_unicast /= s;
    cfg.v4_temporary_anycast /= s;
    cfg.v4_partial_anycast /= s;
    cfg.v6_unicast /= s;
    cfg.v6_unresponsive /= s;
    cfg.v6_medium_anycast_orgs /= s;
    cfg.v6_regional_anycast /= s;
    cfg.v6_backing_anycast /= s;
    cfg.as_graph.stub_count /= s;
  }
  // --world-scale multiplies the unicast/unresponsive bulk via
  // prefix-aggregated groups (WorldConfig::scale) — the opposite lever from
  // the --scale shrink divisor above; 1 (default) is byte-identical to the
  // historical generator.
  cfg.scale = static_cast<std::size_t>(
      std::max(args.get_int("world-scale", 1), 1L));
  return cfg;
}

int cmd_world(const Args& args) {
  const auto world = topo::World::generate(world_config(args));
  std::printf("seed %llu\n",
              static_cast<unsigned long long>(world.config().seed));
  std::printf("ASes: %zu  orgs: %zu  deployments: %zu  targets: %zu\n",
              world.as_graph().size(), world.orgs().size(),
              world.deployments().size(), world.targets().size());
  std::printf("census prefixes: %zu IPv4 /24s, %zu IPv6 /48s\n",
              world.prefix_count(net::IpVersion::kV4),
              world.prefix_count(net::IpVersion::kV6));

  std::map<topo::DeploymentKind, std::size_t> kinds;
  for (const auto& t : world.targets()) {
    if (t.representative) ++kinds[world.deployment(t.deployment).kind];
  }
  TextTable table({"Deployment kind", "Prefixes"});
  const char* names[] = {"unicast", "anycast (global)", "anycast (regional)",
                         "global-BGP unicast", "temporary anycast"};
  for (const auto& [kind, count] : kinds) {
    table.add_row({names[static_cast<int>(kind)],
                   with_commas(static_cast<long long>(count))});
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}

/// Canonical identity of a census run: every knob that changes the
/// simulated byte stream. Stamped into each checkpoint so --resume can
/// refuse a mismatched continuation instead of silently forking the
/// series. --sim-threads is deliberately absent (sharding is
/// byte-identical by contract), as are output paths.
std::string census_run_identity(const Args& args) {
  std::string id;
  id += "seed=" + args.get("seed", "42");
  id += ";scale=" + args.get("scale", "8");
  id += ";world-scale=" + args.get("world-scale", "1");
  id += ";rate=" + args.get("rate", "30000");
  id += args.has("v6") ? ";v6" : "";
  id += args.has("no-tcp") ? ";no-tcp" : "";
  id += args.has("no-dns") ? ";no-dns" : "";
  id += args.has("canary") ? ";canary" : "";
  id += ";faults=" + args.get("faults", "");
  id += ";fault-seed=" + args.get("fault-seed", "1");
  id += ";scenario=" + args.get("scenario", "");
  id += ";scenario-seed=" + args.get("scenario-seed", "0");
  return id;
}

int cmd_census(const Args& args) {
  const auto world = topo::World::generate(world_config(args));
  EventQueue events;
  topo::SimNetwork network(world, events);
  // --sim-threads N runs the simulator on N event-loop shards (target-side
  // processing parallelised; outputs stay byte-identical to --sim-threads 1).
  const long sim_threads = args.get_int("sim-threads", 1);
  if (sim_threads > 1) {
    network.enable_sharding(static_cast<std::size_t>(sim_threads));
  }
  core::Session session(network, platform::make_production_deployment(world));

  // Flight recorder: always on, bounded memory. The signal path means a
  // census killed mid-run (SIGTERM/SIGINT, or a crash) still dumps the
  // event tail before dying; `laces flightrec DUMP` decodes it.
  auto& frec = obs::FlightRecorder::global();
  frec.set_clock(&events);
  if (args.has("flightrec-capacity")) {
    frec.set_capacity(
        static_cast<std::size_t>(args.get_int("flightrec-capacity", 4096)));
  }
  const std::string frec_path =
      args.get("flightrec", args.get("out", "census-out") + "/flightrec.bin");
  // The signal handler can only write(2), not mkdir: make sure the dump
  // directory exists before arming.
  const auto frec_parent = std::filesystem::path(frec_path).parent_path();
  if (!frec_parent.empty()) std::filesystem::create_directories(frec_parent);
  obs::FlightRecorder::arm_signal_dump(frec_path);
  frec.record(obs::FrEvent::kMarker, 0,
              static_cast<std::uint64_t>(args.get_int("seed", 42)));

  census::PipelineConfig config;
  config.ipv6 = args.has("v6");
  config.tcp = !args.has("no-tcp");
  config.dns = !args.has("no-dns");
  config.canary = args.has("canary");
  config.targets_per_second =
      static_cast<double>(args.get_int("rate", 30000));
  census::Pipeline pipeline(network, session,
                            platform::make_ark(world, 80, 0x163),
                            platform::make_ark(world, 40, 0x118), config);

  // Optional deterministic fault injection: --faults '<spec>' layers
  // scheduled faults onto the control plane; --faults random generates a
  // plan from --fault-seed. The run stays a pure function of (seed, plan).
  std::optional<fault::FaultInjector> injector;
  if (args.has("faults")) {
    const auto seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
    const auto spec = args.get("faults", "");
    fault::FaultPlan plan;
    try {
      if (spec == "random" || spec == "true") {
        fault::GenerateOptions opts;
        opts.sites = static_cast<int>(session.worker_count());
        plan = fault::FaultPlan::generate(seed, opts);
      } else {
        plan = fault::FaultPlan::parse(spec, seed);
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "laces census: %s\n", e.what());
      return 2;
    }
    injector.emplace(std::move(plan));
    injector->install(session);
    std::printf("fault plan (seed %llu):\n%s",
                static_cast<unsigned long long>(seed),
                injector->plan().describe().c_str());
  }

  // Optional operational-realism scenario: --scenario '<spec>' composes
  // platform churn and data-plane regimes (plus an embedded fault plan) on
  // one timeline; --scenario random generates one from --scenario-seed.
  // Installation is deferred past the --resume block so a resumed run can
  // skip lifecycle faults that healed before the checkpoint.
  std::optional<scenario::ScenarioRunner> scenario_runner;
  if (args.has("scenario")) {
    const auto sseed =
        static_cast<std::uint64_t>(args.get_int("scenario-seed", 0));
    const auto sspec = args.get("scenario", "");
    scenario::Scenario scen;
    try {
      if (sspec == "random" || sspec == "true") {
        scenario::GenerateOptions opts;
        opts.sites = static_cast<int>(session.worker_count());
        scen = scenario::Scenario::generate(sseed, opts);
      } else {
        scen = scenario::Scenario::parse(sspec, sseed);
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "laces census: %s\n", e.what());
      return 2;
    }
    scenario_runner.emplace(std::move(scen), session);
    std::printf("scenario (seed %llu):\n%s",
                static_cast<unsigned long long>(sseed),
                scenario_runner->scenario().describe().c_str());
  }

  const auto out_dir = std::filesystem::path(args.get("out", "census-out"));
  std::filesystem::create_directories(out_dir);

  // Optional persistent archive (laces_store): every completed day becomes
  // a columnar segment plus a resume checkpoint. --resume restores the
  // checkpointed clock/pipeline/longitudinal state and continues the series
  // at the next day; --days is the total series length in both modes.
  std::optional<store::ArchiveWriter> archive;
  census::LongitudinalStore longitudinal;
  long start_day = 1;
  SimTime resumed_clock = SimTime::epoch();
  const std::string run_identity = census_run_identity(args);
  if (args.has("archive")) {
    try {
      archive.emplace(std::filesystem::path(args.get("archive", "archive")));
      if (args.has("resume")) {
        store::ArchiveReader reader(archive->dir());
        if (!reader.has_checkpoint()) {
          std::fprintf(stderr,
                       "laces census: --resume but %s has no checkpoint\n",
                       archive->dir().string().c_str());
          return 2;
        }
        const store::Checkpoint cp = reader.load_checkpoint();
        if (!cp.run_config.empty() && cp.run_config != run_identity) {
          std::fprintf(stderr,
                       "laces census: --resume refused: the archive was "
                       "written with different options (archived '%s', "
                       "requested '%s')\n",
                       cp.run_config.c_str(), run_identity.c_str());
          return 2;
        }
        // Restore the simulated clock first: schedule_at clamps to now(),
        // so draining one no-op parked at the checkpointed time advances
        // the queue exactly there.
        events.schedule_at(SimTime(cp.sim_time_ns), [] {});
        network.run_events();
        pipeline.restore_state(cp.pipeline);
        for (std::size_t i = 0;
             i < cp.worker_rng.size() && i < session.worker_count(); ++i) {
          session.worker(i).restore_rng_state(cp.worker_rng[i]);
        }
        obs::Tracer::global().set_next_id(cp.next_span_id);
        longitudinal =
            census::LongitudinalStore::from_snapshot(cp.longitudinal);
        start_day = static_cast<long>(cp.last_day) + 1;
        resumed_clock = SimTime(cp.sim_time_ns);
        std::printf("resuming after day %u (sim clock %.1fs, %zu healthy "
                    "days archived)\n",
                    cp.last_day, SimTime(cp.sim_time_ns).to_seconds(),
                    longitudinal.days());
      } else if (!archive->manifest().entries.empty()) {
        std::fprintf(stderr,
                     "laces census: archive %s already holds days up to %u; "
                     "pass --resume to continue it\n",
                     archive->dir().string().c_str(),
                     archive->manifest().last_day());
        return 2;
      }
    } catch (const store::ArchiveError& e) {
      std::fprintf(stderr, "laces census: %s\n", e.what());
      return 1;
    }
  }

  // Lifecycle faults that fired (and healed) before the checkpoint are in
  // the resumed run's past and must not replay.
  if (scenario_runner) scenario_runner->install(resumed_clock);

  const long days = args.get_int("days", 1);
  for (long day = start_day; day <= days; ++day) {
    if (scenario_runner) {
      scenario_runner->begin_day(static_cast<std::uint32_t>(day));
    }
    const auto daily = pipeline.run_day(static_cast<std::uint32_t>(day));
    if (scenario_runner) scenario_runner->end_day();
    const auto path =
        out_dir / ("census-day-" + std::to_string(day) + ".csv");
    std::ofstream file(path);
    census::write_census(file, daily);
    std::string health = "ok";
    if (daily.degraded) {
      health = "DEGRADED (lost_sites=" + std::to_string(daily.lost_sites) +
               ", canary_alarms=" + std::to_string(daily.canary_alarms) + ")";
    }
    std::printf("day %ld [%s]: %zu ATs, %zu GCD-confirmed, published %zu -> "
                "%s (probes: %llu anycast + %llu GCD)\n",
                day, health.c_str(), daily.anycast_targets.size(),
                daily.gcd_confirmed_prefixes().size(),
                daily.published_prefixes().size(), path.string().c_str(),
                static_cast<unsigned long long>(daily.anycast_probes_sent),
                static_cast<unsigned long long>(daily.gcd_probes_sent));
    if (archive) {
      try {
        longitudinal.add(daily);
        const auto& entry = archive->append(daily);
        store::Checkpoint cp;
        cp.last_day = daily.day;
        cp.sim_time_ns = events.now().ns();
        cp.next_span_id = obs::Tracer::global().next_id();
        cp.pipeline = pipeline.state();
        cp.longitudinal = longitudinal.snapshot();
        cp.run_config = run_identity;
        cp.worker_rng.reserve(session.worker_count());
        for (std::size_t i = 0; i < session.worker_count(); ++i) {
          cp.worker_rng.push_back(session.worker(i).rng_state());
        }
        archive->write_checkpoint(cp);
        frec.record(obs::FrEvent::kCheckpoint, 0, daily.day);
        std::printf("  archived %s (%llu bytes, csv %llu, sha256 %.12s...)\n",
                    entry.file.c_str(),
                    static_cast<unsigned long long>(entry.segment_bytes),
                    static_cast<unsigned long long>(entry.csv_bytes),
                    entry.digest_hex.c_str());
      } catch (const store::ArchiveError& e) {
        std::fprintf(stderr, "laces census: %s\n", e.what());
        return 1;
      }
    }
  }

  if (archive && longitudinal.days() + longitudinal.degraded_days() > 0) {
    const auto anycast = longitudinal.anycast_based_stability();
    const auto gcd = longitudinal.gcd_stability();
    std::printf("longitudinal (%zu healthy days, %zu degraded): "
                "anycast-based union=%zu every_day=%zu; "
                "gcd union=%zu every_day=%zu\n",
                anycast.days, anycast.degraded_days, anycast.union_size,
                anycast.every_day, gcd.union_size, gcd.every_day);
  }

  if (injector && !injector->applied().empty()) {
    std::printf("faults applied:\n");
    for (const auto& line : injector->applied()) {
      std::printf("  %s\n", line.c_str());
    }
  }

  if (scenario_runner) {
    std::printf("scenario: %llu regime applications, %llu worker outages\n",
                static_cast<unsigned long long>(
                    scenario_runner->regimes_applied()),
                static_cast<unsigned long long>(
                    scenario_runner->worker_outages()));
    const auto* sinj = scenario_runner->injector();
    if (sinj != nullptr && !sinj->applied().empty()) {
      std::printf("scenario faults applied:\n");
      for (const auto& line : sinj->applied()) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }

  frec.record(obs::FrEvent::kMarker, 1, static_cast<std::uint64_t>(days));

  // Run telemetry: optional machine-readable exports plus the operator
  // report on stdout.
  const auto metrics = obs::Registry::global().snapshot();
  const auto spans = obs::Tracer::global().snapshot();
  int status = 0;

  // Post-mortem capture: any sign of trouble — a watchdog fire, an aborted
  // or degraded measurement, a degraded day — dumps the flight recorder,
  // as does an explicit --flightrec FILE.
  const bool troubled =
      metrics.value("laces_orchestrator_watchdog_fires_total") > 0 ||
      metrics.value("laces_orchestrator_measurements_aborted_total") > 0 ||
      metrics.value("laces_orchestrator_measurements_degraded_total") > 0 ||
      metrics.value("laces_census_degraded_days_total") > 0;
  if (troubled || args.has("flightrec")) {
    if (frec.dump(frec_path)) {
      std::printf("flight recorder dump: %s (%llu events recorded, %llu "
                  "overwritten)\n",
                  frec_path.c_str(),
                  static_cast<unsigned long long>(frec.recorded()),
                  static_cast<unsigned long long>(frec.overwritten()));
    } else {
      std::fprintf(stderr, "laces census: cannot write %s\n",
                   frec_path.c_str());
      status = 1;
    }
  }
  const auto export_to = [&status](const std::string& path, auto writer) {
    std::ofstream out(path);
    if (out) writer(out);
    if (!out) {
      std::fprintf(stderr, "laces census: cannot write %s\n", path.c_str());
      status = 1;
    }
  };
  if (args.has("metrics-out")) {
    export_to(args.get("metrics-out", "metrics.prom"),
              [&metrics](std::ofstream& out) {
                obs::write_prometheus(out, metrics);
              });
  }
  if (args.has("trace-out")) {
    export_to(args.get("trace-out", "trace.jsonl"),
              [&spans](std::ofstream& out) {
                obs::write_trace_jsonl(out, spans);
              });
  }
  std::printf("\n%s", obs::render_run_report(metrics, spans).c_str());
  return status;
}

int cmd_probe(const Args& args) {
  const auto prefix_arg = args.get("prefix", "");
  const auto parsed = net::Ipv4Prefix::parse(prefix_arg);
  if (!parsed) {
    std::fprintf(stderr, "laces probe: --prefix A.B.C.0/24 required\n");
    return 2;
  }
  const auto world = topo::World::generate(world_config(args));
  EventQueue events;
  topo::SimNetwork network(world, events);
  network.set_day(static_cast<std::uint32_t>(args.get_int("day", 1)));
  const auto deployment = platform::make_production_deployment(world);
  core::Session session(network, deployment);

  // Locate the representative address inside the prefix.
  net::IpAddress target;
  bool found = false;
  for (const auto& t : world.targets()) {
    if (t.representative && t.address.is_v4() &&
        parsed->contains(t.address.v4())) {
      target = t.address;
      found = true;
      break;
    }
  }
  if (!found) {
    std::printf("%s: no allocated address in the simulated world\n",
                prefix_arg.c_str());
    return 1;
  }

  // Anycast-based measurement of the single target.
  core::MeasurementSpec spec;
  spec.id = 0x9b0;
  spec.targets_per_second = 100;
  const auto results = session.run(spec, {target});
  const auto classification = core::classify_anycast(results, {target});
  const auto& obs = classification.at(net::Prefix::of(target));
  std::printf("anycast-based: %s (%zu receiving VPs, %u responses)\n",
              std::string(core::to_string(obs.verdict)).c_str(),
              obs.vp_count(), obs.responses);

  // GCD with enumeration and geolocation.
  const auto ark = platform::make_ark(world, 120, 0x163);
  const auto latency = platform::measure_latency(network, ark, {target});
  const auto gcd_cls =
      gcd::classify_gcd(gcd::make_analyzer(ark), latency, {target});
  const auto& gcd_res = gcd_cls.at(net::Prefix::of(target));
  std::printf("GCD:           %s (%zu sites)\n",
              std::string(gcd::to_string(gcd_res.verdict)).c_str(),
              gcd_res.site_count());
  for (const auto& site : gcd_res.sites) {
    if (site.city) {
      const auto& c = geo::city(*site.city);
      std::printf("  site near %s/%s (disc %.0f km)\n",
                  std::string(c.name).c_str(), std::string(c.country).c_str(),
                  site.radius_km);
    }
  }

  // Traceroute from three vantage sites.
  for (const auto site_index : {0u, 10u, 20u}) {
    const auto& site = deployment.sites[site_index];
    const auto trace = platform::traceroute(world, site.attach, target,
                                            network.day());
    std::printf("traceroute from %-12s: %zu AS hops", site.name.c_str(),
                trace.hops.size());
    if (trace.serving_city) {
      std::printf(", served at %s",
                  std::string(geo::city(*trace.serving_city).name).c_str());
    }
    std::printf("%s\n", trace.reached ? "" : " (no reply)");
  }
  return 0;
}

int cmd_catchment(const Args& args) {
  const auto world = topo::World::generate(world_config(args));
  EventQueue events;
  topo::SimNetwork network(world, events);
  network.set_day(1);
  const auto deployment = platform::make_production_deployment(world);
  core::Session session(network, deployment);

  const auto hitlist = hitlist::build_ping_hitlist(world, net::IpVersion::kV4);
  core::MeasurementSpec spec;
  spec.id = 0xca7;
  spec.targets_per_second = 30000;
  spec.worker_offset = SimDuration::seconds(0);
  const auto results = session.run(spec, hitlist.addresses());

  std::map<net::WorkerId, std::size_t> sizes;
  std::unordered_map<net::Prefix, bool, net::PrefixHash> seen;
  for (const auto& rec : results.records) {
    if (seen.emplace(net::Prefix::of(rec.target), true).second) {
      ++sizes[rec.rx_worker];
    }
  }
  TextTable table({"Site", "/24s", "Share"});
  for (const auto& [worker, count] : sizes) {
    table.add_row({deployment.sites[worker - 1].name,
                   with_commas(static_cast<long long>(count)),
                   pct(double(count), double(seen.size()))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_query(const Args& args) {
  if (!args.has("archive")) {
    std::fprintf(stderr, "laces query: --archive DIR required\n");
    return 2;
  }
  const bool json = args.has("json");
  // Every section buffers here and reaches stdout only after the whole
  // query succeeded. A day segment failing its SHA-256 footer check
  // mid-query therefore yields exactly one line-anchored stderr error and
  // a nonzero exit — never partial output with an error tangled into it.
  std::ostringstream out;
  try {
    store::ArchiveReader reader(
        std::filesystem::path(args.get("archive", "archive")));
    store::QueryEngine query(reader);
    bool did_something = false;

    if (args.has("verify")) {
      did_something = true;
      const auto problems = reader.verify();
      if (!problems.empty()) {
        for (const auto& p : problems) {
          std::fprintf(stderr, "laces query: %s\n", p.c_str());
        }
        return 1;
      }
      if (!json) {
        out << "archive verifies clean ("
            << reader.manifest().entries.size() << " days)\n";
      }
    }
    if (args.has("summary")) {
      did_something = true;
      out << (json ? serve::json_summary(query.summary())
                   : store::render_summary(query.summary()));
    }
    if (args.has("stability")) {
      did_something = true;
      out << (json ? serve::json_stability(query.stability())
                   : store::render_stability(query.stability()));
    }
    if (args.has("prefix")) {
      did_something = true;
      const auto parsed = net::Ipv4Prefix::parse(args.get("prefix", ""));
      if (!parsed) {
        std::fprintf(stderr, "laces query: --prefix A.B.C.0/24 malformed\n");
        return 2;
      }
      const net::Prefix prefix(*parsed);
      const auto history = query.history(prefix);
      out << (json ? serve::json_history(prefix, history)
                   : store::render_history(prefix, history));
    }
    if (args.has("intermittent")) {
      did_something = true;
      const auto anycast = query.intermittent_anycast_based();
      const auto gcd = query.intermittent_gcd();
      if (json) {
        out << serve::json_intermittent(anycast, gcd);
      } else {
        out << "intermittent anycast-based (" << anycast.size() << "):\n";
        for (const auto& p : anycast) out << "  " << p.to_string() << "\n";
        out << "intermittent gcd (" << gcd.size() << "):\n";
        for (const auto& p : gcd) out << "  " << p.to_string() << "\n";
      }
    }
    if (args.has("export-day")) {
      did_something = true;
      const auto day = static_cast<std::uint32_t>(args.get_int("export-day", 0));
      std::ostringstream csv;
      reader.export_csv(day, csv);
      if (json) {
        const serve::Response response =
            serve::ExportDayResponse{day, csv.str()};
        out << serve::json_response(response);
      } else {
        out << csv.str();
      }
    }

    if (!did_something) {
      // Default to the manifest-only summary.
      out << (json ? serve::json_summary(query.summary())
                   : store::render_summary(query.summary()));
    }
    std::fputs(out.str().c_str(), stdout);
    return 0;
  } catch (const store::ArchiveError& e) {
    std::fprintf(stderr, "laces query: %s\n", e.what());
    return 1;
  }
}

/// Request-line grammar shared by `laces serve --script` and
/// `laces relay --script`:
///   summary | stability | intermittent | history A.B.C.0/24 | export-day N
///   | stats | mesh-stats | latency | trace-tail N | flightrec-tail N
std::optional<serve::Request> parse_request_line(const std::string& line,
                                                std::string* error) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  if (verb == "summary") return serve::Request{serve::SummaryRequest{}};
  if (verb == "stability") return serve::Request{serve::StabilityRequest{}};
  if (verb == "intermittent") {
    return serve::Request{serve::IntermittentRequest{}};
  }
  if (verb == "history" || verb == "prefix") {
    std::string text;
    in >> text;
    const auto parsed = net::Ipv4Prefix::parse(text);
    if (!parsed) {
      *error = verb + ": malformed prefix '" + text + "'";
      return std::nullopt;
    }
    return serve::Request{serve::HistoryRequest{net::Prefix(*parsed)}};
  }
  if (verb == "export-day") {
    long day = -1;
    in >> day;
    if (day < 0) {
      *error = "export-day: day number required";
      return std::nullopt;
    }
    return serve::Request{
        serve::ExportDayRequest{static_cast<std::uint32_t>(day)}};
  }
  if (verb == "stats") return serve::Request{serve::StatsRequest{}};
  if (verb == "mesh-stats") return serve::Request{serve::MeshStatsRequest{}};
  if (verb == "latency") return serve::Request{serve::LatencyRequest{}};
  if (verb == "trace-tail" || verb == "flightrec-tail") {
    long max = 0;
    in >> max;  // optional; 0 = everything retained
    if (max < 0) max = 0;
    if (verb == "trace-tail") {
      return serve::Request{
          serve::TraceTailRequest{static_cast<std::uint32_t>(max)}};
    }
    return serve::Request{
        serve::FlightRecTailRequest{static_cast<std::uint32_t>(max)}};
  }
  *error = "unknown request '" + verb + "'";
  return std::nullopt;
}

serve::ServerConfig server_config(const Args& args) {
  serve::ServerConfig config;
  config.threads = static_cast<std::size_t>(args.get_int("threads", 4));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 256));
  config.max_inflight_per_connection =
      static_cast<std::size_t>(args.get_int("inflight", 64));
  config.cache_shards =
      static_cast<std::size_t>(args.get_int("cache-shards", 8));
  config.cache_entries_per_shard =
      static_cast<std::size_t>(args.get_int("cache-entries", 256));
  config.key = args.get("key", config.key);
  config.retry_after_ms =
      static_cast<std::uint32_t>(args.get_int("retry-after-ms", 50));
  return config;
}

int cmd_serve(const Args& args) {
  if (!args.has("archive")) {
    std::fprintf(stderr, "laces serve: --archive DIR required\n");
    return 2;
  }

  // Collect the request script: one request per line, '#' and blank lines
  // skipped. Without --script, a default tour of the cheap queries runs.
  std::vector<std::string> lines;
  if (args.has("script")) {
    const auto path = args.get("script", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "laces serve: cannot open script %s\n",
                   path.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  } else {
    lines = {"summary", "stability", "intermittent"};
  }
  std::vector<serve::Request> script;
  for (const auto& line : lines) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string error;
    const auto request = parse_request_line(line.substr(first), &error);
    if (!request) {
      std::fprintf(stderr, "laces serve: %s\n", error.c_str());
      return 2;
    }
    script.push_back(*request);
  }
  if (script.empty()) {
    std::fprintf(stderr, "laces serve: script has no requests\n");
    return 2;
  }

  try {
    store::ArchiveReader reader(
        std::filesystem::path(args.get("archive", "archive")),
        static_cast<std::size_t>(args.get_int("reader-cache", 8)));
    const auto config = server_config(args);
    serve::Server server(reader, config);

    // --repeat replays the script; repeated rounds are answered from the
    // response cache (visible in the stats line below).
    const long repeat = args.get_int("repeat", 1);
    const auto clients = static_cast<std::size_t>(args.get_int("clients", 2));
    std::vector<std::shared_ptr<serve::Connection>> connections;
    for (std::size_t i = 0; i < std::max<std::size_t>(clients, 1); ++i) {
      connections.push_back(server.connect());
    }

    int status = 0;
    std::uint64_t request_id = 0;
    for (long round = 0; round < std::max(repeat, 1L); ++round) {
      // Submit the whole round concurrently, then print responses in
      // script order so output is deterministic.
      std::vector<std::future<std::vector<std::uint8_t>>> pending;
      pending.reserve(script.size());
      for (const auto& request : script) {
        auto& connection = connections[request_id % connections.size()];
        pending.push_back(connection->submit(
            serve::encode_frame(config.key, serve::FrameKind::kRequest,
                                ++request_id, serve::encode_request(request))));
      }
      for (auto& future : pending) {
        const auto frame = serve::decode_frame(config.key, future.get());
        const auto response = serve::decode_response(frame.payload);
        if (std::holds_alternative<serve::ErrorResponse>(response)) {
          status = 1;
        }
        std::fputs(serve::json_response(response).c_str(), stdout);
      }
    }
    server.drain();
    std::fprintf(stderr,
                 "laces serve: executed=%llu cache_hits=%llu shed=%llu "
                 "auth_failures=%llu\n",
                 static_cast<unsigned long long>(server.requests_executed()),
                 static_cast<unsigned long long>(server.cache_hits()),
                 static_cast<unsigned long long>(server.requests_shed()),
                 static_cast<unsigned long long>(server.auth_failures()));

    // Served workloads export the same telemetry artifacts as `laces
    // census`: Prometheus metrics and the span buffer.
    if (args.has("metrics-out")) {
      const auto path = args.get("metrics-out", "metrics.prom");
      std::ofstream out(path);
      if (out) obs::write_prometheus(out, obs::Registry::global().snapshot());
      if (!out) {
        std::fprintf(stderr, "laces serve: cannot write %s\n", path.c_str());
        status = 1;
      }
    }
    if (args.has("trace-out")) {
      const auto path = args.get("trace-out", "trace.jsonl");
      std::ofstream out(path);
      if (out) {
        obs::write_trace_jsonl(out, obs::Tracer::global().snapshot());
      }
      if (!out) {
        std::fprintf(stderr, "laces serve: cannot write %s\n", path.c_str());
        status = 1;
      }
    }
    return status;
  } catch (const store::ArchiveError& e) {
    std::fprintf(stderr, "laces serve: %s\n", e.what());
    return 1;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "laces serve: %s\n", e.what());
    return 1;
  }
}

int cmd_bench_serve(const Args& args) {
  if (!args.has("archive")) {
    std::fprintf(stderr, "laces bench-serve: --archive DIR required\n");
    return 2;
  }
  try {
    store::ArchiveReader reader(
        std::filesystem::path(args.get("archive", "archive")),
        static_cast<std::size_t>(args.get_int("reader-cache", 8)));
    if (reader.manifest().entries.empty()) {
      std::fprintf(stderr, "laces bench-serve: archive is empty\n");
      return 2;
    }
    serve::Server server(reader, server_config(args));

    // History requests draw from the first day's published prefixes;
    // export requests draw from every archived day.
    const auto first_day = reader.manifest().entries.front().day;
    const auto prefixes = reader.load_day(first_day)->published_prefixes();
    std::vector<std::uint32_t> days;
    for (const auto& entry : reader.manifest().entries) {
      days.push_back(entry.day);
    }

    serve::LoadGenConfig load;
    load.clients = static_cast<std::size_t>(args.get_int("clients", 4));
    load.requests_per_client =
        static_cast<std::size_t>(args.get_int("requests", 2000));
    load.target_qps = std::stod(args.get("qps", "0"));
    load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    const auto report = serve::run_load(server, prefixes, days, load);
    server.drain();
    std::fputs(report.describe().c_str(), stdout);
    if (args.has("out")) {
      const auto path = args.get("out", "BENCH_serve.json");
      std::ofstream out(path);
      out << report.to_json();
      if (!out) {
        std::fprintf(stderr, "laces bench-serve: cannot write %s\n",
                     path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  } catch (const store::ArchiveError& e) {
    std::fprintf(stderr, "laces bench-serve: %s\n", e.what());
    return 1;
  }
}

/// `laces flightrec DUMP`: decode a flight-recorder dump to JSONL on
/// stdout (one event per line, merged deterministic order).
int cmd_flightrec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "laces flightrec: cannot open %s\n", path.c_str());
    return 2;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  try {
    const auto events = obs::decode_flight_dump(bytes);
    std::ostringstream out;
    obs::write_flight_jsonl(out, events);
    std::fputs(out.str().c_str(), stdout);
    std::fflush(stdout);
    return 0;
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "laces flightrec: %s\n", e.what());
    return 1;
  }
}

/// Renders one relay's MeshStatsResponse: a counters line plus per-peer
/// and per-subscription tables — the human form of the in-band
/// `mesh-stats` answer.
void print_mesh_stats(const serve::MeshStatsResponse& mesh) {
  std::printf(
      "mesh node %llu '%s': feed=(day %u, seq %u) published=%llu "
      "pushed=%llu dropped=%llu dup=%llu\n"
      "  forwards: seen=%llu suppressed=%llu answered=%llu "
      "negative_cache_hits=%llu\n",
      static_cast<unsigned long long>(mesh.node_id), mesh.name.c_str(),
      mesh.feed_day, mesh.feed_seq,
      static_cast<unsigned long long>(mesh.deltas_published),
      static_cast<unsigned long long>(mesh.deltas_forwarded),
      static_cast<unsigned long long>(mesh.deltas_dropped),
      static_cast<unsigned long long>(mesh.duplicate_deltas),
      static_cast<unsigned long long>(mesh.forwards_seen),
      static_cast<unsigned long long>(mesh.forward_dups_suppressed),
      static_cast<unsigned long long>(mesh.forwards_answered),
      static_cast<unsigned long long>(mesh.negative_cache_hits));
  if (!mesh.peers.empty()) {
    TextTable peers({"Peer", "Node", "Ver", "Fwd out", "Fwd in", "Delta out",
                     "Delta in"});
    for (const auto& p : mesh.peers) {
      peers.add_row({p.name, std::to_string(p.node_id),
                     std::to_string(p.version),
                     with_commas(static_cast<long long>(p.forwards_sent)),
                     with_commas(static_cast<long long>(p.forwards_received)),
                     with_commas(static_cast<long long>(p.deltas_sent)),
                     with_commas(static_cast<long long>(p.deltas_received))});
    }
    std::printf("%s", peers.render().c_str());
  }
  if (!mesh.subscriptions.empty()) {
    TextTable subs({"Sub", "Subscriber", "Fam", "Prio", "Prefixes", "Acked",
                    "Lag", "Pushed", "Dropped"});
    for (const auto& s : mesh.subscriptions) {
      subs.add_row(
          {std::to_string(s.id), s.subscriber,
           s.family == 0 ? "both" : std::to_string(s.family),
           std::to_string(s.priority),
           s.prefix_count == 0 ? "all" : std::to_string(s.prefix_count),
           "d" + std::to_string(s.acked_day) + "#" +
               std::to_string(s.acked_seq),
           std::to_string(s.lag_days),
           with_commas(static_cast<long long>(s.chunks_pushed)),
           with_commas(static_cast<long long>(s.chunks_dropped))});
    }
    std::printf("%s", subs.render().c_str());
  }
}

/// The in-process relay chain `laces relay` and `laces stat --mesh` share:
/// node 1 is the origin (co-located server, archive replay, an
/// ArchiveWriter publisher hook), nodes 2..N are pure relays that
/// auto-subscribe hop by hop at connect time — so building the chain
/// already replays the archived feed to its tail.
struct MeshChain {
  std::unique_ptr<store::ArchiveWriter> writer;  // outlives the relays
  std::vector<std::unique_ptr<mesh::Relay>> relays;
  mesh::Relay& origin() { return *relays.front(); }
  mesh::Relay& tail() { return *relays.back(); }
};

std::optional<MeshChain> build_mesh_chain(const std::filesystem::path& dir,
                                          serve::Server* origin_server,
                                          const std::string& key, long count,
                                          long hop_limit, std::string* error) {
  MeshChain chain;
  mesh::RelayConfig base;
  base.key = key;
  base.hop_limit =
      static_cast<std::uint8_t>(std::clamp(hop_limit, 1L, 255L));
  {
    auto rc = base;
    rc.node_id = 1;
    rc.name = "origin";
    chain.relays.push_back(
        std::make_unique<mesh::Relay>(rc, origin_server, dir));
  }
  chain.writer = std::make_unique<store::ArchiveWriter>(dir);
  chain.origin().attach_publisher(*chain.writer);
  for (long i = 2; i <= std::max(count, 1L); ++i) {
    auto rc = base;
    rc.node_id = static_cast<std::uint64_t>(i);
    rc.name = "relay-" + std::to_string(i);
    chain.relays.push_back(std::make_unique<mesh::Relay>(rc));
    const auto link = mesh::connect(*chain.relays[static_cast<std::size_t>(i) - 2],
                                    *chain.relays[static_cast<std::size_t>(i) - 1]);
    if (!link.ok) {
      *error = "connect " + chain.relays[static_cast<std::size_t>(i) - 2]->name() +
               " <-> " + chain.relays[static_cast<std::size_t>(i) - 1]->name() +
               ": " + link.message;
      return std::nullopt;
    }
  }
  return chain;
}

/// `laces stat`: live introspection client. Starts a server over the
/// archive, drives background load through it, and polls the in-band
/// admin endpoint — the same authenticated StatsRequest/LatencyRequest
/// frames any remote client would send — rendering each snapshot.
int cmd_stat(const Args& args) {
  if (!args.has("archive")) {
    std::fprintf(stderr, "laces stat: --archive DIR required\n");
    return 2;
  }
  try {
    store::ArchiveReader reader(
        std::filesystem::path(args.get("archive", "archive")),
        static_cast<std::size_t>(args.get_int("reader-cache", 8)));
    if (reader.manifest().entries.empty()) {
      std::fprintf(stderr, "laces stat: archive is empty\n");
      return 2;
    }
    const auto config = server_config(args);
    serve::Server server(reader, config);

    // --mesh N co-locates a relay chain: node 1 registers itself as this
    // server's mesh-stats provider, nodes 2..N subscribe hop by hop, and
    // a tail follower consumes the feed — so the in-band `mesh-stats`
    // answer below carries real peers, subscriptions and cursors.
    std::optional<MeshChain> chain;
    std::unique_ptr<mesh::CensusFollower> follower;
    if (const long mesh_relays = args.get_int("mesh", 0); mesh_relays > 0) {
      std::string error;
      chain = build_mesh_chain(
          std::filesystem::path(args.get("archive", "archive")), &server,
          config.key, mesh_relays, std::max(4L, mesh_relays), &error);
      if (!chain) {
        std::fprintf(stderr, "laces stat: %s\n", error.c_str());
        return 1;
      }
      follower = std::make_unique<mesh::CensusFollower>(chain->tail());
    }

    const auto first_day = reader.manifest().entries.front().day;
    const auto prefixes = reader.load_day(first_day)->published_prefixes();
    std::vector<std::uint32_t> days;
    for (const auto& entry : reader.manifest().entries) {
      days.push_back(entry.day);
    }

    serve::LoadGenConfig load;
    load.clients = static_cast<std::size_t>(args.get_int("clients", 2));
    load.requests_per_client =
        static_cast<std::size_t>(args.get_int("requests", 500));
    load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    std::thread load_thread(
        [&server, &prefixes, &days, load] {
          serve::run_load(server, prefixes, days, load);
        });

    const bool json = args.has("json");
    const long polls = std::max(args.get_int("polls", 3), 1L);
    const auto interval =
        std::chrono::milliseconds(args.get_int("interval-ms", 100));
    auto connection = server.connect();
    std::uint64_t request_id = 0;
    const auto ask = [&](const serve::Request& request) {
      const auto frame = connection->call(serve::encode_frame(
          config.key, serve::FrameKind::kRequest, ++request_id,
          serve::encode_request(request)));
      return serve::decode_response(
          serve::decode_frame(config.key, frame).payload);
    };

    for (long poll = 0; poll < polls; ++poll) {
      const auto stats_resp = ask(serve::Request{serve::StatsRequest{}});
      const auto latency_resp = ask(serve::Request{serve::LatencyRequest{}});
      if (json) {
        std::fputs(serve::json_response(stats_resp).c_str(), stdout);
        std::fputs(serve::json_response(latency_resp).c_str(), stdout);
      } else {
        const auto& s =
            std::get<serve::StatsResponse>(stats_resp).stats;
        std::printf(
            "poll %ld: executed=%llu shed=%llu auth_failures=%llu "
            "queue=%u/%u workers=%u spans=%u%s\n",
            poll + 1, static_cast<unsigned long long>(s.requests_executed),
            static_cast<unsigned long long>(s.requests_shed),
            static_cast<unsigned long long>(s.auth_failures), s.queue_depth,
            s.queue_capacity, s.workers, s.active_spans,
            s.draining ? " DRAINING" : "");
        std::printf(
            "  caches: response %llu/%llu hits, segment %llu/%llu hits; "
            "flightrec %llu events (%llu overwritten)\n",
            static_cast<unsigned long long>(s.response_cache_hits),
            static_cast<unsigned long long>(s.response_cache_hits +
                                            s.response_cache_misses),
            static_cast<unsigned long long>(s.segment_cache_hits),
            static_cast<unsigned long long>(s.segment_cache_hits +
                                            s.segment_cache_misses),
            static_cast<unsigned long long>(s.flightrec_recorded),
            static_cast<unsigned long long>(s.flightrec_overwritten));
        TextTable table({"Stage", "Count", "p50 us", "p99 us", "p999 us",
                         "max us"});
        const auto& stages =
            std::get<serve::LatencyResponse>(latency_resp).stages;
        for (const auto& st : stages) {
          char p50[32], p99[32], p999[32], mx[32];
          std::snprintf(p50, sizeof p50, "%.1f", st.p50_us);
          std::snprintf(p99, sizeof p99, "%.1f", st.p99_us);
          std::snprintf(p999, sizeof p999, "%.1f", st.p999_us);
          std::snprintf(mx, sizeof mx, "%.1f", st.max_us);
          table.add_row({st.stage,
                         with_commas(static_cast<long long>(st.count)), p50,
                         p99, p999, mx});
        }
        std::printf("%s", table.render().c_str());
      }
      if (poll + 1 < polls) std::this_thread::sleep_for(interval);
    }

    // Per-peer mesh state over the same in-band admin path. A plain
    // archive server answers with the empty snapshot.
    const auto mesh_resp = ask(serve::Request{serve::MeshStatsRequest{}});
    if (json) {
      std::fputs(serve::json_response(mesh_resp).c_str(), stdout);
    } else {
      const auto& mesh = std::get<serve::MeshStatsResponse>(mesh_resp);
      if (mesh.node_id == 0 && mesh.peers.empty()) {
        std::printf("mesh: no relay attached (run with --mesh N)\n");
      } else {
        print_mesh_stats(mesh);
      }
    }

    // Final poll: the recent trace spans and flight-recorder tail.
    const auto trace_resp =
        ask(serve::Request{serve::TraceTailRequest{
            static_cast<std::uint32_t>(args.get_int("spans", 10))}});
    const auto frec_resp =
        ask(serve::Request{serve::FlightRecTailRequest{
            static_cast<std::uint32_t>(args.get_int("events", 20))}});
    if (json) {
      std::fputs(serve::json_response(trace_resp).c_str(), stdout);
      std::fputs(serve::json_response(frec_resp).c_str(), stdout);
    } else {
      const auto& tail = std::get<serve::TraceTailResponse>(trace_resp);
      std::printf("trace tail (%zu spans, %llu dropped):\n",
                  tail.spans.size(),
                  static_cast<unsigned long long>(tail.dropped));
      for (const auto& span : tail.spans) {
        std::printf("  #%llu %s [%lld..%lld]\n",
                    static_cast<unsigned long long>(span.id),
                    span.name.c_str(), static_cast<long long>(span.start_ns),
                    static_cast<long long>(span.end_ns));
      }
      const auto& events =
          std::get<serve::FlightRecTailResponse>(frec_resp).events;
      std::printf("flight recorder tail (%zu events):\n", events.size());
      for (const auto& e : events) {
        std::printf("  %s code=%u a=%llu b=%u\n",
                    std::string(obs::to_string(
                                    static_cast<obs::FrEvent>(e.kind)))
                        .c_str(),
                    e.code, static_cast<unsigned long long>(e.a), e.b);
      }
    }

    load_thread.join();
    server.drain();
    return 0;
  } catch (const store::ArchiveError& e) {
    std::fprintf(stderr, "laces stat: %s\n", e.what());
    return 1;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "laces stat: %s\n", e.what());
    return 1;
  }
}

/// `laces relay`: in-process mesh demo. Chains N relays over an archive,
/// replays the census delta feed down the chain (origin -> tail), proves
/// the tail reconstructs every archived day byte-identically, then drives
/// scripted queries into the TAIL relay — answered by flooding the mesh
/// back to the origin's server — and dumps per-relay mesh stats.
int cmd_relay(const Args& args) {
  if (!args.has("archive")) {
    std::fprintf(stderr, "laces relay: --archive DIR required\n");
    return 2;
  }
  const std::filesystem::path dir(args.get("archive", "archive"));
  try {
    store::ArchiveReader reader(
        dir, static_cast<std::size_t>(args.get_int("reader-cache", 8)));
    if (reader.manifest().entries.empty()) {
      std::fprintf(stderr, "laces relay: archive is empty\n");
      return 2;
    }
    const auto config = server_config(args);
    serve::Server server(reader, config);

    const long count = std::max(args.get_int("relays", 3), 1L);
    // Forwards flood hop by hop; the tail must be able to reach the origin.
    const long hops = args.get_int("hop-limit", std::max(4L, count));
    std::string error;
    auto chain =
        build_mesh_chain(dir, &server, config.key, count, hops, &error);
    if (!chain) {
      std::fprintf(stderr, "laces relay: %s\n", error.c_str());
      return 1;
    }
    mesh::CensusFollower follower(chain->tail());

    // Byte-identity audit: the feed that reached the tail through
    // count-1 relay hops must reproduce every archived day exactly.
    int status = 0;
    for (const auto& entry : reader.manifest().entries) {
      std::ostringstream want;
      reader.export_csv(entry.day, want);
      const bool ok = follower.has_day(entry.day) &&
                      follower.day_csv(entry.day) == want.str();
      std::printf("day %u: %s (%zu bytes over %ld hops)\n", entry.day,
                  ok ? "byte-identical" : "MISMATCH", want.str().size(),
                  count - 1);
      if (!ok) status = 1;
    }

    // Scripted queries enter at the tail and are answered by the origin.
    std::vector<std::string> lines = {"summary", "stability", "mesh-stats"};
    if (args.has("script")) {
      const auto path = args.get("script", "");
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "laces relay: cannot open script %s\n",
                     path.c_str());
        return 2;
      }
      lines.clear();
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
    }
    std::uint64_t request_id = 0;
    for (const auto& line : lines) {
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      const auto request = parse_request_line(line.substr(first), &error);
      if (!request) {
        std::fprintf(stderr, "laces relay: %s\n", error.c_str());
        return 2;
      }
      const auto frame = chain->tail().query(serve::encode_frame(
          config.key, serve::FrameKind::kRequest, ++request_id,
          serve::encode_request(*request)));
      const auto response = serve::decode_response(
          serve::decode_frame(config.key, frame).payload);
      if (std::holds_alternative<serve::ErrorResponse>(response)) status = 1;
      std::fputs(serve::json_response(response).c_str(), stdout);
    }

    for (const auto& relay : chain->relays) print_mesh_stats(relay->stats());
    server.drain();
    return status;
  } catch (const store::ArchiveError& e) {
    std::fprintf(stderr, "laces relay: %s\n", e.what());
    return 1;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "laces relay: %s\n", e.what());
    return 1;
  }
}

/// `laces subscribe`: leaf subscriber over an archive's delta feed with
/// the wire filter grammar (--family 4|6, --prefix A.B.C.0/24). Prints one
/// line per completed day; --export-day N dumps that day's reconstruction
/// (CSV, or the served JSON envelope with --json).
int cmd_subscribe(const Args& args) {
  if (!args.has("archive")) {
    std::fprintf(stderr, "laces subscribe: --archive DIR required\n");
    return 2;
  }
  const std::filesystem::path dir(args.get("archive", "archive"));
  try {
    store::ArchiveReader reader(
        dir, static_cast<std::size_t>(args.get_int("reader-cache", 8)));
    if (reader.manifest().entries.empty()) {
      std::fprintf(stderr, "laces subscribe: archive is empty\n");
      return 2;
    }
    std::string error;
    auto chain = build_mesh_chain(
        dir, nullptr, args.get("key", "laces-serve"),
        std::max(args.get_int("relays", 1), 1L),
        args.get_int("hop-limit", 4), &error);
    if (!chain) {
      std::fprintf(stderr, "laces subscribe: %s\n", error.c_str());
      return 1;
    }

    mesh::SubscriptionSpec spec;
    const long family = args.get_int("family", 0);
    if (family != 0 && family != 4 && family != 6) {
      std::fprintf(stderr, "laces subscribe: --family must be 4 or 6\n");
      return 2;
    }
    spec.family = static_cast<std::uint8_t>(family);
    if (args.has("prefix")) {
      const auto parsed = net::Ipv4Prefix::parse(args.get("prefix", ""));
      if (!parsed) {
        std::fprintf(stderr,
                     "laces subscribe: --prefix A.B.C.0/24 malformed\n");
        return 2;
      }
      spec.prefixes.push_back(net::Prefix(*parsed));
    }
    const bool filtered = spec.family != 0 || !spec.prefixes.empty();
    mesh::CensusFollower follower(chain->tail(), spec);

    int status = 0;
    for (const auto& entry : reader.manifest().entries) {
      if (!follower.has_day(entry.day)) {
        std::printf("day %u: MISSING\n", entry.day);
        status = 1;
        continue;
      }
      const auto csv = follower.day_csv(entry.day);
      if (filtered) {
        // A filtered feed reconstructs a subset; report its size only.
        std::printf("day %u: %lld lines (filtered)\n", entry.day,
                    static_cast<long long>(
                        std::count(csv.begin(), csv.end(), '\n')));
      } else {
        std::ostringstream want;
        reader.export_csv(entry.day, want);
        const bool ok = csv == want.str();
        std::printf("day %u: %s (%zu bytes)\n", entry.day,
                    ok ? "byte-identical" : "MISMATCH", csv.size());
        if (!ok) status = 1;
      }
    }
    if (args.has("export-day")) {
      const auto day =
          static_cast<std::uint32_t>(args.get_int("export-day", 0));
      if (!follower.has_day(day)) {
        std::fprintf(stderr, "laces subscribe: day %u not in feed\n", day);
        return 1;
      }
      std::fputs((args.has("json") ? follower.day_json(day)
                                   : follower.day_csv(day))
                     .c_str(),
                 stdout);
    }
    const auto cursor = follower.cursor();
    std::fprintf(stderr,
                 "laces subscribe: %zu days, cursor=(day %u, seq %u)\n",
                 follower.days(), cursor.day, cursor.seq);
    return status;
  } catch (const store::ArchiveError& e) {
    std::fprintf(stderr, "laces subscribe: %s\n", e.what());
    return 1;
  } catch (const serve::ProtocolError& e) {
    std::fprintf(stderr, "laces subscribe: %s\n", e.what());
    return 1;
  }
}

int cmd_fuzz_scenarios(const Args& args) {
  scenario::FuzzOptions opts;
  opts.start_seed = static_cast<std::uint64_t>(args.get_int("start-seed", 1));
  opts.seeds = static_cast<int>(args.get_int("seeds", 20));
  opts.days = static_cast<std::uint32_t>(
      std::max(args.get_int("days", 2), 1L));
  opts.timeout_seconds = static_cast<double>(args.get_int("timeout", 120));
  opts.resume_check_every = static_cast<int>(args.get_int("resume-every", 5));
  opts.shard_check_every = static_cast<int>(args.get_int("shard-every", 7));
  opts.shard_count = static_cast<std::size_t>(
      std::max(args.get_int("sim-threads", 4), 1L));
  opts.work_dir =
      std::filesystem::path(args.get("work-dir", "fuzz-scenarios-work"));
  opts.verbose = args.has("verbose");
  std::filesystem::create_directories(opts.work_dir);

  const auto summary = scenario::run_fuzz(opts);
  std::printf("fuzz-scenarios: %d seeds (%d resume checks, %d shard checks): "
              "%llu regime applications, %llu degraded days, %llu worker "
              "outages\n",
              summary.ran, summary.resume_checks, summary.shard_checks,
              static_cast<unsigned long long>(summary.regimes_applied),
              static_cast<unsigned long long>(summary.degraded_days),
              static_cast<unsigned long long>(summary.worker_outages));
  if (summary.ok()) {
    std::printf("fuzz-scenarios: OK\n");
    return 0;
  }
  for (const auto& f : summary.failures) {
    std::printf(
        "fuzz-scenarios: seed %llu FAILED: %s\n"
        "  spec: %s\n"
        "  reproduce: laces fuzz-scenarios --start-seed %llu --seeds 1 "
        "--days %u --resume-every 1 --shard-every 1\n",
        static_cast<unsigned long long>(f.seed), f.what.c_str(),
        f.spec.c_str(), static_cast<unsigned long long>(f.seed), opts.days);
  }
  return 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: laces <world|census|probe|catchment|query|serve|"
               "bench-serve|relay|subscribe|stat|flightrec|fuzz-scenarios> "
               "[options]\n"
               "  world      --seed N --scale K\n"
               "  census     --days N --out DIR --v6 --no-tcp --no-dns --rate R\n"
               "             --sim-threads N --world-scale K\n"
               "             --metrics-out FILE --trace-out FILE --canary\n"
               "             --faults 'SPEC|random' --fault-seed N\n"
               "             (SPEC: 'kind@start[+dur][:site=N|all|cli,p=X,"
               "mag=D]; ...')\n"
               "             --scenario 'SPEC|random' --scenario-seed N\n"
               "             (SPEC adds regimes diurnal|storm|throttle|skew|"
               "route-flip|\n"
               "              path-loss|churn: 'kind@at[+dur][:days=A-B,"
               "site=N|all,count=K,\n"
               "              p=X,frac=F,mag=D,proto=icmp+tcp+dns]; ...')\n"
               "             --archive DIR [--resume]\n"
               "             --flightrec FILE [--flightrec-capacity N]\n"
               "  probe      --prefix A.B.C.0/24 --day D\n"
               "  catchment  --seed N --scale K\n"
               "  query      --archive DIR [--summary] [--stability]\n"
               "             [--prefix A.B.C.0/24] [--intermittent]\n"
               "             [--export-day N] [--verify] [--json]\n"
               "  serve      --archive DIR [--script FILE] [--repeat K]\n"
               "             [--clients M] [--threads N] [--queue N]\n"
               "             [--inflight N] [--cache-shards N]\n"
               "             [--cache-entries N] [--key K]\n"
               "             [--metrics-out FILE] [--trace-out FILE]\n"
               "  bench-serve --archive DIR [--clients M] [--requests N]\n"
               "             [--qps Q] [--seed N] [--out FILE]\n"
               "             [--threads N] [--queue N] [--inflight N]\n"
               "  relay      --archive DIR [--relays N] [--hop-limit H]\n"
               "             [--script FILE] [--key K]\n"
               "  subscribe  --archive DIR [--relays N] [--family 4|6]\n"
               "             [--prefix A.B.C.0/24] [--export-day N] [--json]\n"
               "  stat       --archive DIR [--polls N] [--interval-ms MS]\n"
               "             [--clients M] [--requests N] [--mesh N] [--json]\n"
               "  flightrec  DUMP   (decode a flight-recorder dump to JSONL)\n"
               "  fuzz-scenarios [--seeds N] [--start-seed S] [--days D]\n"
               "             [--timeout SECS] [--resume-every K] "
               "[--shard-every K]\n"
               "             [--sim-threads N] [--work-dir DIR] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (command == "world") return cmd_world(args);
  if (command == "census") return cmd_census(args);
  if (command == "probe") return cmd_probe(args);
  if (command == "catchment") return cmd_catchment(args);
  if (command == "query") return cmd_query(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "bench-serve") return cmd_bench_serve(args);
  if (command == "relay") return cmd_relay(args);
  if (command == "subscribe") return cmd_subscribe(args);
  if (command == "stat") return cmd_stat(args);
  if (command == "fuzz-scenarios") return cmd_fuzz_scenarios(args);
  if (command == "flightrec") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr, "usage: laces flightrec DUMP\n");
      return 2;
    }
    return cmd_flightrec(argv[2]);
  }
  usage();
  return 2;
}
